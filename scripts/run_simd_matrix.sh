#!/usr/bin/env bash
# Builds and tests the suite with the SIMD batch dominance kernels OFF and
# ON, then proves the determinism contract: the Figure 9 report must be
# byte-identical between the forced-scalar and SIMD builds at 1 and 8
# threads, with inter-region pipelining off and on, and with the
# tree-indexed coarse phase off and on (the batch kernels charge the exact
# dominance_cmps counts of the serial scalar loops, the pipeline commits
# its speculative work serially, and the coarse index charges the serial
# scan's exact coarse_ops, so no report quantity may move).
#
#   scripts/run_simd_matrix.sh [EXTRA_CMAKE_FLAGS...]
#
# Pair with scripts/run_tsan.sh, which accepts -DCAQE_SIMD=OFF/ON the same
# way for a sanitized run of either kernel path.
set -euo pipefail
cd "$(dirname "$0")/.."

if (( $(nproc) < 2 )); then
  echo "WARNING: nproc=$(nproc) — the 8-thread cells all run on one" \
       "hardware CPU; the matrix still proves determinism, but not" \
       "parallel speedup." >&2
fi

FIG9_ARGS=(--rows=4000)
declare -A REPORTS

for simd in OFF ON; do
  build_dir="build-simd-${simd,,}"
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCAQE_SIMD="${simd}" \
    -DCAQE_BUILD_EXAMPLES=OFF \
    "$@"
  cmake --build "${build_dir}" -j"$(nproc)"
  ctest --test-dir "${build_dir}" --output-on-failure -j"$(nproc)"
  for threads in 1 8; do
    for pipeline in 0 1; do
      for coarse in 0 1; do
        out="${build_dir}/fig9_t${threads}_p${pipeline}_c${coarse}.txt"
        "./${build_dir}/bench/bench_fig9" "${FIG9_ARGS[@]}" \
          --threads="${threads}" --pipeline="${pipeline}" \
          --coarse_index="${coarse}" > "${out}"
        REPORTS["${simd}_${threads}_${pipeline}_${coarse}"]="${out}"
      done
    done
  done
done

# Per thread count, every (SIMD, pipeline, coarse_index) cell must match
# the scalar non-pipelined scan-phase report.
status=0
for threads in 1 8; do
  tools/report_diff.sh "fig9 report (threads=${threads})" \
    "${REPORTS[OFF_${threads}_0_0]}" \
    "OFF_pipeline=${REPORTS[OFF_${threads}_1_0]}" \
    "OFF_coarse_index=${REPORTS[OFF_${threads}_0_1]}" \
    "OFF_pipeline_coarse_index=${REPORTS[OFF_${threads}_1_1]}" \
    "ON_scalar_path=${REPORTS[ON_${threads}_0_0]}" \
    "ON_pipeline=${REPORTS[ON_${threads}_1_0]}" \
    "ON_coarse_index=${REPORTS[ON_${threads}_0_1]}" \
    "ON_pipeline_coarse_index=${REPORTS[ON_${threads}_1_1]}" || status=1
done
exit "${status}"
