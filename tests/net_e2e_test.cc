// End-to-end tests of the wall-clock network front-end (src/net): a real
// loopback TCP session against NetServer, then a replay of the recorded
// trace that must reproduce the live serving report byte-for-byte — the
// record/replay determinism oracle. Also exercises the hostile-client
// hardening over the wire (stable ERR replies, overflow resync, idle
// timeout, connection cap).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/generator.h"
#include "metrics/export.h"
#include "net/net_server.h"
#include "net/recorder.h"
#include "serve/server.h"
#include "serve/serving.h"
#include "test_util.h"

namespace caqe {
namespace net {
namespace {

std::pair<Table, Table> MakeServeTables(int num_keys, int64_t rows = 200,
                                        uint64_t seed = 11) {
  GeneratorConfig cfg;
  cfg.num_rows = rows;
  cfg.num_attrs = 3;
  cfg.join_selectivities.assign(num_keys, 0.05);
  cfg.distribution = Distribution::kIndependent;
  cfg.seed = seed;
  Table r = GenerateTable("R", cfg).value();
  cfg.seed = seed + 1;
  Table t = GenerateTable("T", cfg).value();
  return {std::move(r), std::move(t)};
}

std::vector<MappingFunction> ThreeDims() {
  return {MappingFunction{0, 0}, MappingFunction{1, 1}, MappingFunction{2, 2}};
}

ServeOptions SmallServeOptions() {
  ServeOptions options;
  options.target_regions = 64;
  return options;
}

/// Minimal blocking loopback client. Reads accumulate into transcript().
class RawClient {
 public:
  explicit RawClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }
  bool closed_by_server() const { return closed_; }
  const std::string& transcript() const { return transcript_; }

  void Send(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<size_t>(n);
    }
  }

  void SendLine(const std::string& line) { Send(line + "\n"); }

  /// Reads until transcript() contains `token`, the server closes, or
  /// `timeout_ms` passes. Returns true iff the token arrived.
  bool ReadUntil(const std::string& token, int timeout_ms = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (transcript_.find(token) == std::string::npos) {
      if (closed_) return false;
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      const int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count());
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, wait_ms) <= 0) continue;
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        closed_ = true;
        continue;
      }
      transcript_.append(buf, static_cast<size_t>(n));
    }
    return true;
  }

  /// Reads until the server closes the connection (or timeout).
  void ReadToClose(int timeout_ms = 10000) {
    ReadUntil("\x01never\x01", timeout_ms);
  }

 private:
  int fd_ = -1;
  bool closed_ = false;
  std::string transcript_;
};

// The oracle: a live wall-clock session over loopback, recorded, then
// replayed through Submit()+Run() on the virtual clock. The serving report
// and the exec event stream must both be byte-identical.
TEST(NetE2eTest, RecordReplayByteIdentical) {
  const std::string trace_path =
      ::testing::TempDir() + "/caqe_e2e_session.trace";

  std::vector<ExecEvent> live_events;
  std::string live_report_text;
  {
    auto [r, t] = MakeServeTables(2, 200);
    ServeOptions serve_options = SmallServeOptions();
    serve_options.trace = &live_events;
    auto server =
        CaqeServer::Create(std::move(r), std::move(t), ThreeDims(), {0, 1},
                           serve_options)
            .value();

    NetServerOptions options;
    options.record_path = trace_path;
    options.record_attrs = {{"suite", "e2e"}};
    auto net = NetServer::Create(server.get(), std::move(options)).value();
    ASSERT_GT(net->port(), 0);

    Status serve_status;
    std::thread driver([&] { serve_status = net->Serve(); });

    RawClient client(net->port());
    ASSERT_TRUE(client.connected());
    client.SendLine(
        "SUBMIT name=q0 key=0 pref=0,1 CONTRACT step:5");
    ASSERT_TRUE(client.ReadUntil("QUEUED 0"));
    client.SendLine(
        "SUBMIT name=q1 key=1 pref=1,2 priority=0.5 deadline=30 "
        "CONTRACT hyper:0.01,0.05");
    ASSERT_TRUE(client.ReadUntil("QUEUED 1"));
    client.SendLine(
        "SUBMIT name=q2 key=0 pref=0,2 sel=r:0:0.2:0.9 CONTRACT card:0.9,1");
    ASSERT_TRUE(client.ReadUntil("QUEUED 2"));
    client.SendLine("CANCEL 1");
    client.SendLine("STATUS");
    ASSERT_TRUE(client.ReadUntil("STATUS vtime="));
    client.SendLine("DRAIN");
    client.ReadToClose();
    driver.join();

    ASSERT_TRUE(serve_status.ok()) << serve_status.ToString();
    ASSERT_TRUE(net->drained());
    live_report_text = ServingReportText(net->report());

    const std::string& transcript = client.transcript();
    EXPECT_NE(transcript.find("HELLO caqe/1 dims=3"), std::string::npos);
    EXPECT_NE(transcript.find("DECISION 0 "), std::string::npos);
    EXPECT_NE(transcript.find("DONE 0 "), std::string::npos);
    EXPECT_NE(transcript.find("DRAINED"), std::string::npos);
    EXPECT_NE(transcript.find("BYE"), std::string::npos);
    EXPECT_TRUE(client.closed_by_server());
  }

  // Replay on the virtual clock: same tables, the recorded arrival trace.
  Result<SessionTrace> trace = LoadSessionTrace(trace_path);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(trace->Attr("suite", ""), "e2e");
  ASSERT_GE(trace->events.size(), 3u);

  std::vector<ExecEvent> replay_events;
  auto [r, t] = MakeServeTables(2, 200);
  ServeOptions serve_options = SmallServeOptions();
  serve_options.trace = &replay_events;
  auto replay =
      CaqeServer::Create(std::move(r), std::move(t), ThreeDims(), {0, 1},
                         serve_options)
          .value();
  for (const SessionEvent& event : trace->events) {
    const double at = static_cast<double>(event.tq) * trace->quantum;
    if (event.command.kind == CommandKind::kSubmit) {
      const SubmitCommand& submit = event.command.submit;
      const int id = replay->Submit(submit.query, submit.contract, at,
                                    submit.deadline_seconds);
      ASSERT_EQ(id, submit.trace_id);
    } else {
      ASSERT_EQ(event.command.kind, CommandKind::kCancel);
      ASSERT_TRUE(replay->Cancel(event.command.cancel_id, at).ok());
    }
  }
  Result<ServingReport> replay_report = replay->Run();
  ASSERT_TRUE(replay_report.ok()) << replay_report.status().ToString();

  EXPECT_EQ(live_report_text, ServingReportText(*replay_report))
      << "live and replayed serving reports must be byte-identical";
  EXPECT_EQ(ExecEventsJsonl(live_events), ExecEventsJsonl(replay_events))
      << "live and replayed exec event streams must be byte-identical";

  std::remove(trace_path.c_str());
}

// Hostile clients over the wire: every malformed input earns a stable ERR
// reply on the same connection, and the session keeps working afterwards.
TEST(NetE2eTest, HostileClientsGetStableErrReplies) {
  auto [r, t] = MakeServeTables(1, 100);
  auto server =
      CaqeServer::Create(std::move(r), std::move(t), ThreeDims(), {0},
                         SmallServeOptions())
          .value();

  NetServerOptions options;
  options.limits.max_line_bytes = 128;
  auto net = NetServer::Create(server.get(), std::move(options)).value();
  Status serve_status;
  std::thread driver([&] { serve_status = net->Serve(); });

  RawClient client(net->port());
  ASSERT_TRUE(client.connected());
  client.SendLine("FROBNICATE");
  ASSERT_TRUE(client.ReadUntil("ERR bad-command"));
  // Oversized line: one ERR, then clean resync on the next line.
  client.SendLine(std::string(300, 'A'));
  ASSERT_TRUE(client.ReadUntil("ERR line-too-long"));
  client.SendLine("STATUS");
  ASSERT_TRUE(client.ReadUntil("STATUS vtime="));
  // Control byte.
  client.Send(std::string("STAT\x01US\n"));
  ASSERT_TRUE(client.ReadUntil("ERR bad-byte"));
  // Parses fine but the query shape is invalid for this server (preference
  // dimension 9 >= 3 output dims): rejected by validation, not a crash.
  client.SendLine("SUBMIT name=q key=0 pref=9 CONTRACT step:1");
  ASSERT_TRUE(client.ReadUntil("ERR bad-query"));
  // Out-of-range request id.
  client.SendLine("CANCEL 5");
  ASSERT_TRUE(client.ReadUntil("ERR bad-field request-id"));
  // Live clients must not pick their own ids.
  client.SendLine("SUBMIT id=3 name=q key=0 pref=0 CONTRACT step:1");
  ASSERT_TRUE(client.ReadUntil("ERR bad-field id"));
  // The connection survived all of it.
  client.SendLine("SUBMIT name=ok key=0 pref=0,1,2 CONTRACT step:5");
  ASSERT_TRUE(client.ReadUntil("QUEUED 0"));
  client.SendLine("DRAIN");
  client.ReadToClose();
  driver.join();
  ASSERT_TRUE(serve_status.ok()) << serve_status.ToString();
  EXPECT_NE(client.transcript().find("DRAINED"), std::string::npos);
}

// A slow-loris connection (opens, then never sends a complete line) is
// closed once idle_timeout_ms passes.
TEST(NetE2eTest, IdleTimeoutClosesSlowLoris) {
  auto [r, t] = MakeServeTables(1, 100);
  auto server =
      CaqeServer::Create(std::move(r), std::move(t), ThreeDims(), {0},
                         SmallServeOptions())
          .value();

  NetServerOptions options;
  options.idle_timeout_ms = 100;
  auto net = NetServer::Create(server.get(), std::move(options)).value();
  Status serve_status;
  std::thread driver([&] { serve_status = net->Serve(); });

  RawClient loris(net->port());
  ASSERT_TRUE(loris.connected());
  loris.Send("SUB");  // A partial line, never completed.
  loris.ReadToClose(5000);
  EXPECT_TRUE(loris.closed_by_server());

  net->RequestDrain();
  driver.join();
  ASSERT_TRUE(serve_status.ok()) << serve_status.ToString();
}

// Connections beyond max_connections get a stable refusal.
TEST(NetE2eTest, ConnectionCapRefusesExtraClients) {
  auto [r, t] = MakeServeTables(1, 100);
  auto server =
      CaqeServer::Create(std::move(r), std::move(t), ThreeDims(), {0},
                         SmallServeOptions())
          .value();

  NetServerOptions options;
  options.max_connections = 1;
  auto net = NetServer::Create(server.get(), std::move(options)).value();
  Status serve_status;
  std::thread driver([&] { serve_status = net->Serve(); });

  RawClient first(net->port());
  ASSERT_TRUE(first.connected());
  first.SendLine("STATUS");
  ASSERT_TRUE(first.ReadUntil("STATUS vtime="));

  RawClient second(net->port());
  ASSERT_TRUE(second.connected());
  second.ReadToClose(5000);
  EXPECT_NE(second.transcript().find("ERR too-many-connections"),
            std::string::npos);
  EXPECT_TRUE(second.closed_by_server());

  net->RequestDrain();
  driver.join();
  ASSERT_TRUE(serve_status.ok()) << serve_status.ToString();
}

// GET /metrics and /healthz work over the same port as the line protocol.
TEST(NetE2eTest, HttpScrapeEndpoints) {
  auto [r, t] = MakeServeTables(1, 100);
  auto server =
      CaqeServer::Create(std::move(r), std::move(t), ThreeDims(), {0},
                         SmallServeOptions())
          .value();

  Observability obs;
  NetServerOptions options;
  options.obs = &obs;
  auto net = NetServer::Create(server.get(), std::move(options)).value();
  Status serve_status;
  std::thread driver([&] { serve_status = net->Serve(); });

  {
    RawClient http(net->port());
    ASSERT_TRUE(http.connected());
    http.Send("GET /healthz HTTP/1.0\r\n\r\n");
    http.ReadToClose(5000);
    EXPECT_NE(http.transcript().find("HTTP/1.0 200"), std::string::npos);
  }
  {
    RawClient http(net->port());
    ASSERT_TRUE(http.connected());
    http.Send("GET /metrics HTTP/1.0\r\n\r\n");
    http.ReadToClose(5000);
    EXPECT_NE(http.transcript().find("caqe_net_connections_total"),
              std::string::npos);
  }
  {
    RawClient http(net->port());
    ASSERT_TRUE(http.connected());
    http.Send("GET /nope HTTP/1.0\r\n\r\n");
    http.ReadToClose(5000);
    EXPECT_NE(http.transcript().find("HTTP/1.0 404"), std::string::npos);
  }

  net->RequestDrain();
  driver.join();
  ASSERT_TRUE(serve_status.ok()) << serve_status.ToString();
}

/// One HTTP GET against a lingering server; returns the full response.
std::string HttpGet(int port, const std::string& path) {
  RawClient http(port);
  if (!http.connected()) return "";
  http.Send("GET " + path + " HTTP/1.0\r\n\r\n");
  http.ReadToClose(5000);
  return http.transcript();
}

// The debug surface: /statusz, /tracez/<id>, /flightz, and the TRACE verb.
// Hostile request ids must earn stable kebab-case error bodies, and the
// span tree served for an admitted request must be causally connected.
TEST(NetE2eTest, IntrospectionEndpointsAndTraceVerb) {
  auto [r, t] = MakeServeTables(1, 100);
  Observability obs;
  ServeOptions serve_options = SmallServeOptions();
  serve_options.obs = &obs;  // Engine-side: spans + the audit ledger.
  auto server =
      CaqeServer::Create(std::move(r), std::move(t), ThreeDims(), {0},
                         serve_options)
          .value();

  NetServerOptions options;
  options.obs = &obs;
  options.linger_after_drain = true;
  auto net = NetServer::Create(server.get(), std::move(options)).value();
  Status serve_status;
  std::thread driver([&] { serve_status = net->Serve(); });

  RawClient client(net->port());
  ASSERT_TRUE(client.connected());
  client.SendLine("SUBMIT name=q0 key=0 pref=0,1 CONTRACT step:5");
  ASSERT_TRUE(client.ReadUntil("QUEUED 0"));
  client.SendLine("DRAIN");
  ASSERT_TRUE(client.ReadUntil("DRAINED"));

  // TRACE <name>: the audit-ledger tail, framed for script clients.
  client.SendLine("TRACE q0");
  ASSERT_TRUE(client.ReadUntil("TRACE-END"));
  const std::string& transcript = client.transcript();
  EXPECT_NE(transcript.find("TRACE 0 records="), std::string::npos);
  EXPECT_NE(transcript.find("\"kind\":\"arrival\""), std::string::npos);
  EXPECT_NE(transcript.find("\"kind\":\"decision\""), std::string::npos);
  EXPECT_NE(transcript.find("\"kind\":\"finish\""), std::string::npos);
  client.SendLine("TRACE nope");
  ASSERT_TRUE(client.ReadUntil("ERR unknown-request"));

  // /statusz: state + the request table row for q0.
  const std::string statusz = HttpGet(net->port(), "/statusz");
  EXPECT_NE(statusz.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(statusz.find("state: drained"), std::string::npos);
  EXPECT_NE(statusz.find("\n0 q0 "), std::string::npos);

  // /tracez/0: a connected causal tree. Every "parent" in the body must be
  // 0 or some "span" that also appears in the body — no orphaned children.
  const std::string tracez = HttpGet(net->port(), "/tracez/0");
  EXPECT_NE(tracez.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(tracez.find("\"request\":0"), std::string::npos);
  EXPECT_NE(tracez.find("\"name\":\"q0\""), std::string::npos);
  EXPECT_NE(tracez.find("\"records\":["), std::string::npos);
  EXPECT_EQ(tracez.find("\"root_span\":0,"), std::string::npos)
      << "admitted request must have a root span";
  const auto scan = [&tracez](const char* token) {
    std::vector<uint64_t> values;
    size_t pos = 0;
    while ((pos = tracez.find(token, pos)) != std::string::npos) {
      pos += std::strlen(token);
      uint64_t value = 0;
      while (pos < tracez.size() && tracez[pos] >= '0' &&
             tracez[pos] <= '9') {
        value = value * 10 + static_cast<uint64_t>(tracez[pos++] - '0');
      }
      values.push_back(value);
    }
    return values;
  };
  std::set<uint64_t> span_ids = {0};
  for (const uint64_t id : scan("\"span\":")) span_ids.insert(id);
  const std::vector<uint64_t> parent_ids = scan("\"parent\":");
  EXPECT_GT(span_ids.size(), 1u);
  ASSERT_FALSE(parent_ids.empty());
  for (const uint64_t parent : parent_ids) {
    EXPECT_NE(span_ids.count(parent), 0u) << "orphaned parent " << parent;
  }

  // Hostile /tracez inputs: stable error bodies, never a crash.
  const std::string non_numeric = HttpGet(net->port(), "/tracez/abc");
  EXPECT_NE(non_numeric.find("HTTP/1.0 400"), std::string::npos);
  EXPECT_NE(non_numeric.find("bad-request-id"), std::string::npos);
  const std::string overlong = HttpGet(net->port(), "/tracez/9999999999");
  EXPECT_NE(overlong.find("HTTP/1.0 400"), std::string::npos);
  const std::string bare = HttpGet(net->port(), "/tracez");
  EXPECT_NE(bare.find("HTTP/1.0 400"), std::string::npos);
  const std::string unknown = HttpGet(net->port(), "/tracez/57");
  EXPECT_NE(unknown.find("HTTP/1.0 404"), std::string::npos);
  EXPECT_NE(unknown.find("unknown-request-id"), std::string::npos);

  // /flightz: the always-on ring mirrored both spans and audit records.
  const std::string flightz = HttpGet(net->port(), "/flightz");
  EXPECT_NE(flightz.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(flightz.find("\"kind\":\"span\""), std::string::npos);
  EXPECT_NE(flightz.find("\"kind\":\"audit\""), std::string::npos);

  client.SendLine("STOP");
  client.ReadToClose();
  driver.join();
  ASSERT_TRUE(serve_status.ok()) << serve_status.ToString();
}

}  // namespace
}  // namespace net
}  // namespace caqe
