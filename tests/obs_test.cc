// Observability layer tests (src/obs/): span sink thread safety, metrics
// registry exposition formats, contract-health timelines, export escaping,
// and — most importantly — the determinism guarantees: attaching an
// Observability must not change a single deterministic byte of any engine
// or serving report.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "caqe/caqe.h"
#include "metrics/export.h"
#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/stream_writer.h"
#include "test_util.h"

namespace caqe {
namespace {

using ::caqe::testing::MakeTables;

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsRegistryTest, CounterAndGaugeRoundTrip) {
  MetricsRegistry registry;
  registry.counter("caqe_test_ops_total").Inc();
  registry.counter("caqe_test_ops_total").Inc(4);
  registry.gauge("caqe_test_level").Set(2.5);
  EXPECT_EQ(registry.counter("caqe_test_ops_total").value(), 5);
  EXPECT_EQ(registry.gauge("caqe_test_level").value(), 2.5);
}

TEST(MetricsRegistryTest, HistogramUsesInclusiveUpperBounds) {
  Histogram hist({1.0, 10.0, 100.0});
  hist.Observe(0.5);    // <= 1
  hist.Observe(1.0);    // <= 1 (inclusive le semantics)
  hist.Observe(10.0);   // <= 10
  hist.Observe(99.0);   // <= 100
  hist.Observe(1000.0); // +Inf
  const Histogram::Snapshot snap = hist.TakeSnapshot();
  ASSERT_EQ(snap.cumulative.size(), 3u);
  EXPECT_EQ(snap.cumulative[0], 2);
  EXPECT_EQ(snap.cumulative[1], 3);
  EXPECT_EQ(snap.cumulative[2], 4);
  EXPECT_EQ(snap.count, 5);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 10.0 + 99.0 + 1000.0);
}

TEST(MetricsRegistryTest, BucketLadders) {
  const std::vector<double> exp = ExponentialBuckets(1e-3, 10.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[0], 1e-3);
  EXPECT_DOUBLE_EQ(exp[3], 1.0);

  const std::vector<double> rel = RelativeErrorBuckets();
  ASSERT_EQ(rel.size(), 15u);  // 7 negative, zero, 7 positive.
  EXPECT_DOUBLE_EQ(rel.front(), -5.0);
  EXPECT_DOUBLE_EQ(rel[7], 0.0);
  EXPECT_DOUBLE_EQ(rel.back(), 5.0);
  EXPECT_TRUE(std::is_sorted(rel.begin(), rel.end()));
}

TEST(MetricsRegistryTest, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.counter("caqe_decisions_total{decision=\"admit\"}").Inc(3);
  registry.counter("caqe_decisions_total{decision=\"reject\"}").Inc();
  registry.gauge("caqe_rate").Set(0.75);
  registry.histogram("caqe_lat_seconds", {0.1, 1.0}).Observe(0.05);
  registry.histogram("caqe_lat_seconds", {0.1, 1.0}).Observe(5.0);
  const std::string text = registry.PrometheusText();

  // One # TYPE line per family, shared across the label variants.
  EXPECT_NE(text.find("# TYPE caqe_decisions_total counter\n"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE caqe_decisions_total counter",
                      text.find("# TYPE caqe_decisions_total counter") + 1),
            std::string::npos);
  EXPECT_NE(text.find("caqe_decisions_total{decision=\"admit\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("caqe_decisions_total{decision=\"reject\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE caqe_rate gauge\ncaqe_rate 0.75\n"),
            std::string::npos);
  // Histogram: cumulative buckets, +Inf == count, _sum and _count lines.
  EXPECT_NE(text.find("caqe_lat_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("caqe_lat_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("caqe_lat_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("caqe_lat_seconds_sum 5.05\n"), std::string::npos);
  EXPECT_NE(text.find("caqe_lat_seconds_count 2\n"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonSnapshotEscapesHostileNames) {
  MetricsRegistry registry;
  registry.counter("evil{name=\"a\\\"b\\\\c\"}").Inc(7);
  const std::string json = registry.JsonSnapshot();
  // The raw quote/backslash inside the label value must come out escaped.
  EXPECT_NE(json.find("\"evil{name=\\\"a\\\\\\\"b\\\\\\\\c\\\"}\":7"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Spans and the sink.

TEST(TraceSpanTest, DisabledSpanRecordsNothing) {
  // Null sink + null wall accumulator: the span must be inert.
  { TraceSpan span(nullptr, "noop", "test"); }
  TraceSink sink;
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSpanTest, WallSinkAccumulatesWithoutASink) {
  double wall = 0.0;
  { TraceSpan span(nullptr, "timed", "test", &wall); }
  { TraceSpan span(nullptr, "timed", "test", &wall); }
  EXPECT_GT(wall, 0.0);
}

TEST(TraceSpanTest, RecordsDeterministicAttribution) {
  TraceSink sink;
  {
    TraceSpan span(&sink, "eval", "pipeline");
    span.set_region(4);
    span.set_query(2);
    span.set_arg("dominance_cmps", 123);
  }
  const std::vector<SpanRecord> spans = sink.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "eval");
  EXPECT_STREQ(spans[0].category, "pipeline");
  EXPECT_EQ(spans[0].region, 4);
  EXPECT_EQ(spans[0].query, 2);
  EXPECT_STREQ(spans[0].arg_name, "dominance_cmps");
  EXPECT_EQ(spans[0].arg_value, 123);
  EXPECT_GE(spans[0].dur_us, 0.0);
}

// The cross-thread path: many threads record into one sink concurrently.
// Run under ThreadSanitizer (build-tsan) this is the data-race proof for
// the sharded sink; the single-writer `wall_sink` contract is exercised
// everywhere else on the serial driver thread only.
TEST(TraceSinkTest, ConcurrentRecordingIsSafeAndLossless) {
  TraceSink sink;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&sink] {
      for (int j = 0; j < kSpansPerThread; ++j) {
        TraceSpan span(&sink, "worker", "test");
        span.set_arg("iteration", j);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(sink.size(), static_cast<size_t>(kThreads * kSpansPerThread));
  // Snapshot is seq-sorted and loses nothing.
  const std::vector<SpanRecord> spans = sink.Snapshot();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads * kSpansPerThread));
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].seq, spans[i].seq);
  }
}

TEST(TraceExportTest, ChromeTraceJsonShape) {
  TraceSink sink;
  {
    TraceSpan span(&sink, "join", "pipeline");
    span.set_region(1);
    span.set_arg("join_results", 42);
  }
  ContractHealth health;
  health.SetName(0, "S\"3\\");  // Hostile name must be escaped.
  health.Sample(0.5, 0, 10, 1.25, 0.75);
  const std::string json = ChromeTraceJson(sink.Snapshot(), &health);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // Span event.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // Counter track.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // Process names.
  EXPECT_NE(json.find("\"region\":1"), std::string::npos);
  EXPECT_NE(json.find("\"join_results\":42"), std::string::npos);
  EXPECT_NE(json.find("pscore S\\\"3\\\\#0"), std::string::npos);
  // No raw (unescaped) quote inside the hostile name.
  EXPECT_EQ(json.find("S\"3"), std::string::npos);
}

TEST(TraceExportTest, SpansJsonlExcludesTimingByDefault) {
  TraceSink sink;
  {
    TraceSpan span(&sink, "discard", "pipeline");
    span.set_region(7);
  }
  const std::string bare = SpansJsonl(sink.Snapshot());
  EXPECT_NE(bare.find("\"name\":\"discard\""), std::string::npos);
  EXPECT_NE(bare.find("\"region\":7"), std::string::npos);
  EXPECT_EQ(bare.find("ts_us"), std::string::npos);
  const std::string timed = SpansJsonl(sink.Snapshot(), true);
  EXPECT_NE(timed.find("\"ts_us\":"), std::string::npos);
  EXPECT_NE(timed.find("\"dur_us\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Streaming obs (wall-clock serving): Drain, sampling, incremental writer.

TEST(TraceSinkTest, DrainMovesRecordsOutAndResetsTheSink) {
  TraceSink sink;
  for (int i = 0; i < 5; ++i) {
    TraceSpan span(&sink, "step", "serve");
    span.set_region(i);
  }
  const std::vector<SpanRecord> first = sink.Drain();
  ASSERT_EQ(first.size(), 5u);
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_LT(first[i - 1].seq, first[i].seq);  // Seq-sorted, like Snapshot.
  }
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_TRUE(sink.Drain().empty());
  // The sink keeps working after a drain; seq keeps advancing globally.
  { TraceSpan span(&sink, "later", "serve"); }
  const std::vector<SpanRecord> second = sink.Drain();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_GT(second[0].seq, first.back().seq);
}

TEST(TraceSinkTest, SamplingIsStickyPerRootDeterministically) {
  TraceSink sink;
  sink.set_sample_every(3);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span(&sink, "sampled", "serve");
  }
  const std::vector<SpanRecord> kept = sink.Snapshot();
  // Span ids 1..10 were assigned; an unparented span roots its own tree,
  // so the sampling key is the id and 3, 6, 9 survive.
  ASSERT_EQ(kept.size(), 3u);
  for (const SpanRecord& span : kept) {
    EXPECT_EQ(span.root % 3, 0u);
    EXPECT_EQ(span.id, span.root);
  }
  sink.set_sample_every(0);  // Clamped to 1: keep everything again.
  { TraceSpan span(&sink, "all", "serve"); }
  EXPECT_EQ(sink.size(), 4u);
}

TEST(TraceSinkTest, SamplingKeepsWholeCausalTrees) {
  TraceSink sink;
  sink.set_sample_every(2);
  {
    TraceSpan dropped_root(&sink, "root", "serve");  // id 1: dropped tree.
    TraceSpan kept_root(&sink, "root", "serve");     // id 2: kept tree.
    {
      TraceSpan child(&sink, "child", "serve");  // id 3, tree 2.
      child.set_parent(kept_root.id(), kept_root.id());
    }
    {
      TraceSpan child(&sink, "child", "serve");  // id 4, tree 1.
      child.set_parent(dropped_root.id(), dropped_root.id());
    }
  }
  // The sampling unit is the root: tree 2 (root and child) survives whole,
  // tree 1 is dropped whole — never a child without its parent.
  const std::vector<SpanRecord> kept = sink.Snapshot();
  ASSERT_EQ(kept.size(), 2u);
  for (const SpanRecord& span : kept) {
    EXPECT_EQ(span.root, 2u);
  }
  EXPECT_STREQ(kept[0].name, "child");  // Destructs (and records) first.
  EXPECT_EQ(kept[0].parent, 2u);
  EXPECT_STREQ(kept[1].name, "root");
  EXPECT_EQ(kept[1].parent, 0u);
}

TEST(StreamingTraceWriterTest, ChromeFormatStreamsLoadableBatches) {
  const std::string path = ::testing::TempDir() + "/caqe_stream.trace.json";
  TraceSink sink;
  {
    auto writer =
        StreamingTraceWriter::Open(path, StreamingTraceWriter::Format::kChrome)
            .value();
    {
      TraceSpan span(&sink, "batch1", "serve");
      span.set_region(1);
    }
    writer->Append(sink.Drain());
    {
      TraceSpan span(&sink, "batch2", "serve");
      span.set_query(2);
    }
    { TraceSpan span(&sink, "batch2b", "serve"); }
    writer->Append(sink.Drain());
    writer->Append({});  // Empty batches are fine.
    EXPECT_EQ(writer->spans_written(), 3u);
    writer->Close();
    writer->Close();  // Idempotent.
  }
  std::string content;
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) content.append(buf, n);
  std::fclose(file);
  EXPECT_EQ(content.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(content.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(content.find("\"batch1\""), std::string::npos);
  EXPECT_NE(content.find("\"batch2\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"M\""), std::string::npos);  // Process name.
  EXPECT_NE(content.find("]}"), std::string::npos);  // Trailer present.
  std::remove(path.c_str());
}

TEST(StreamingTraceWriterTest, JsonlFormatWritesOneLinePerSpan) {
  const std::string path = ::testing::TempDir() + "/caqe_stream.jsonl";
  TraceSink sink;
  {
    auto writer =
        StreamingTraceWriter::Open(path, StreamingTraceWriter::Format::kJsonl)
            .value();
    for (int i = 0; i < 3; ++i) {
      TraceSpan span(&sink, "row", "serve");
      span.set_region(i);
    }
    writer->Append(sink.Drain());
  }  // Destructor closes.
  std::string content;
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) content.append(buf, n);
  std::fclose(file);
  int lines = 0;
  for (char c : content) lines += c == '\n';
  EXPECT_EQ(lines, 3);
  EXPECT_NE(content.find("\"ts_us\":"), std::string::npos);  // Wall timings.
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Contract audit ledger.

TEST(AuditLedgerTest, AppendAssignsSeqAndTailFiltersByRequest) {
  AuditLedger ledger;
  AuditRecord a;
  a.kind = AuditKind::kArrival;
  a.request_id = 0;
  a.vtime = 0.1;
  AuditRecord b;
  b.kind = AuditKind::kDecision;
  b.request_id = 1;
  b.phase = "admit";
  b.reason = "feasible";
  AuditRecord c;
  c.kind = AuditKind::kFinish;
  c.request_id = 0;
  c.phase = "completed";
  ledger.Append(a);
  ledger.Append(b);
  ledger.Append(c);

  const std::vector<AuditRecord> all = ledger.Snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].seq, 0u);
  EXPECT_EQ(all[1].seq, 1u);
  EXPECT_EQ(all[2].seq, 2u);

  const std::vector<AuditRecord> tail = ledger.Tail(0, 8);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].kind, AuditKind::kArrival);
  EXPECT_EQ(tail[1].kind, AuditKind::kFinish);
  // With a smaller cap the *latest* records win.
  const std::vector<AuditRecord> last = ledger.Tail(0, 1);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].kind, AuditKind::kFinish);
  EXPECT_TRUE(ledger.Tail(9, 4).empty());
}

TEST(AuditLedgerTest, CapacityBoundsRecordsAndCountsDropped) {
  AuditLedger ledger;
  ledger.set_capacity(2);
  for (int i = 0; i < 5; ++i) {
    AuditRecord record;
    record.kind = AuditKind::kRegionStep;
    record.request_id = i;
    ledger.Append(record);
  }
  EXPECT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger.dropped(), 3);
}

TEST(AuditLedgerTest, WallClockIsAlwaysTheLastJsonField) {
  AuditLedger ledger;
  AuditRecord record;
  record.kind = AuditKind::kDecision;
  record.request_id = 3;
  record.vtime = 0.25;
  record.phase = "admit";
  record.reason = "contract-feasible";
  record.est_first_seconds = 0.5;
  record.est_finish_seconds = 1.5;
  record.expected_utility = 0.75;
  ledger.Append(record);

  const std::string with_wall = ledger.Jsonl(true);
  const std::string without = ledger.Jsonl(false);
  // wall_us — the only nondeterministic field — is emitted last so that
  // stripping the `,"wall_us":...` suffix yields exactly Jsonl(false),
  // which is what the replay determinism gates byte-compare.
  const size_t wall_pos = with_wall.find(",\"wall_us\":");
  ASSERT_NE(wall_pos, std::string::npos);
  EXPECT_EQ(with_wall.find('}', wall_pos), with_wall.size() - 2);
  EXPECT_EQ(without.find("wall_us"), std::string::npos);
  EXPECT_EQ(with_wall.substr(0, wall_pos) + "}\n", without);
  EXPECT_NE(without.find("\"kind\":\"decision\""), std::string::npos);
  EXPECT_NE(without.find("\"phase\":\"admit\""), std::string::npos);
  EXPECT_NE(without.find("\"reason\":\"contract-feasible\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder.

TEST(FlightRecorderTest, RingKeepsTheMostRecentEntries) {
  FlightRecorder flight(4);
  EXPECT_EQ(flight.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    FlightEntry entry;
    entry.kind = 'a';
    entry.name = "decision";
    entry.request_id = i;
    flight.Record(entry);
  }
  EXPECT_EQ(flight.total(), 10u);
  const std::vector<FlightEntry> dump = flight.Dump();
  ASSERT_EQ(dump.size(), 4u);
  // Oldest first; requests 6..9 survived the wrap.
  for (size_t i = 0; i < dump.size(); ++i) {
    EXPECT_EQ(dump[i].request_id, 6 + static_cast<int>(i));
    EXPECT_EQ(dump[i].seq, 6 + i);
  }
}

TEST(FlightRecorderTest, ConcurrentWritersNeverTearTheDump) {
  FlightRecorder flight(64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::atomic<bool> stop{false};
  std::thread reader([&flight, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const FlightEntry& entry : flight.Dump()) {
        // Every surviving entry must be internally consistent — a torn
        // read would break the request_id/value invariant the writers
        // maintain below.
        EXPECT_EQ(entry.kind, 'a');
        EXPECT_EQ(entry.value, static_cast<int64_t>(entry.request_id) * 2);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&flight, t] {
      for (int i = 0; i < kPerThread; ++i) {
        FlightEntry entry;
        entry.kind = 'a';
        entry.name = "region_step";
        entry.request_id = t * kPerThread + i;
        entry.value = static_cast<int64_t>(entry.request_id) * 2;
        flight.Record(entry);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(flight.total(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(FlightRecorderTest, JsonlExportsBothKinds) {
  FlightRecorder flight(8);
  FlightEntry span;
  span.kind = 's';
  span.name = "join";
  span.region = 2;
  flight.Record(span);
  FlightEntry audit;
  audit.kind = 'a';
  audit.name = "finish";
  audit.request_id = 1;
  audit.vtime = 0.5;
  flight.Record(audit);
  const std::string jsonl = flight.Jsonl();
  EXPECT_NE(jsonl.find("\"kind\":\"span\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"audit\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"join\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"finish\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"region\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"req\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Contract health.

TEST(ContractHealthTest, DeduplicatesUnchangedSamples) {
  ContractHealth health;
  health.Sample(0.1, 3, 5, 1.0, 1.0);
  health.Sample(0.2, 3, 5, 1.0, 1.0);  // Identical triple: dropped.
  health.Sample(0.3, 3, 6, 1.2, 1.0);  // Results moved: recorded.
  health.Sample(0.4, 3, 6, 1.2, 0.8);  // Weight moved: recorded.
  const std::vector<HealthSample> samples = health.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].vtime, 0.1);
  EXPECT_DOUBLE_EQ(samples[1].vtime, 0.3);
  EXPECT_DOUBLE_EQ(samples[2].weight, 0.8);
}

TEST(ContractHealthTest, CapacityBoundsTheTimeline) {
  ContractHealth health;
  health.set_capacity(2);
  health.Sample(0.1, 0, 1, 0.1, 1.0);
  health.Sample(0.2, 0, 2, 0.2, 1.0);
  health.Sample(0.3, 0, 3, 0.3, 1.0);  // Over capacity: counted as dropped.
  EXPECT_EQ(health.size(), 2u);
  EXPECT_EQ(health.dropped(), 1);
}

TEST(ContractHealthTest, JsonlEscapesNames) {
  ContractHealth health;
  health.SetName(5, "q\"uote\\slash");
  health.Sample(0.25, 5, 2, 0.5, 1.0);
  const std::string jsonl = health.Jsonl();
  EXPECT_NE(jsonl.find("\"id\":5"), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"q\\\"uote\\\\slash\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"results\":2"), std::string::npos);
  EXPECT_EQ(health.LabelOf(5), "q\"uote\\slash#5");
  EXPECT_EQ(health.LabelOf(6), "#6");
}

// ---------------------------------------------------------------------------
// ExecEventsJsonl escaping (export-layer satellite).

TEST(ExecEventsJsonlTest, EscapesHostileQueryNames) {
  std::vector<ExecEvent> events;
  ExecEvent event;
  event.kind = ExecEvent::Kind::kResultsEmitted;
  event.vtime = 0.5;
  event.query = 0;
  event.count = 3;
  events.push_back(event);
  const std::string jsonl = ExecEventsJsonl(events, {"a\"b\\c"});
  EXPECT_NE(jsonl.find("\"kind\":\"results_emitted\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\":\"a\\\"b\\\\c\""), std::string::npos);
  // The raw, unescaped name must not appear anywhere.
  EXPECT_EQ(jsonl.find("a\"b\\c"), std::string::npos);

  // Out-of-range or negative query indices simply omit the name field.
  event.query = 7;
  const std::string no_name = ExecEventsJsonl({event}, {"only-one"});
  EXPECT_EQ(no_name.find("\"name\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine integration: determinism, wall-phase accounting, span coverage.

ExecutionReport RunCaqe(const Table& r, const Table& t,
                        const Workload& workload, int num_threads,
                        Observability* obs) {
  std::vector<Contract> contracts;
  for (int q = 0; q < workload.num_queries(); ++q) {
    contracts.push_back(MakeLogDecayContract());
  }
  ExecOptions options;
  options.num_threads = num_threads;
  options.obs = obs;
  std::unique_ptr<Engine> engine = MakeEngine("CAQE").value();
  return engine->Execute(r, t, workload, contracts, options).value();
}

TEST(ObsIntegrationTest, AttachingObservabilityIsDeterminismNeutral) {
  auto [r, t] = MakeTables(Distribution::kIndependent, /*rows=*/400,
                           /*attrs=*/4, /*selectivity=*/0.02);
  const Workload workload =
      MakeSubspaceWorkload(4, 0, 5, PriorityPolicy::kUniform).value();

  const ExecutionReport off = RunCaqe(r, t, workload, 1, nullptr);
  Observability obs;
  const ExecutionReport on = RunCaqe(r, t, workload, 1, &obs);

  EXPECT_EQ(on.workload_pscore, off.workload_pscore);
  EXPECT_EQ(on.average_satisfaction, off.average_satisfaction);
  EXPECT_EQ(on.stats.join_probes, off.stats.join_probes);
  EXPECT_EQ(on.stats.join_results, off.stats.join_results);
  EXPECT_EQ(on.stats.dominance_cmps, off.stats.dominance_cmps);
  EXPECT_EQ(on.stats.coarse_ops, off.stats.coarse_ops);
  EXPECT_EQ(on.stats.emitted_results, off.stats.emitted_results);
  EXPECT_EQ(on.stats.virtual_seconds, off.stats.virtual_seconds);
  ASSERT_EQ(on.queries.size(), off.queries.size());
  for (size_t q = 0; q < on.queries.size(); ++q) {
    EXPECT_EQ(on.queries[q].pscore, off.queries[q].pscore);
    EXPECT_EQ(on.queries[q].results, off.queries[q].results);
  }

  // The traced run actually produced telemetry.
  EXPECT_GT(obs.spans.size(), 0u);
  EXPECT_GT(obs.health.size(), 0u);
  const std::string prom = obs.metrics.PrometheusText();
  EXPECT_NE(prom.find("caqe_engine_dominance_cmps_total"),
            std::string::npos);
  EXPECT_NE(prom.find("caqe_scheduler_picks_total"), std::string::npos);
  EXPECT_NE(prom.find("caqe_region_service_virtual_seconds_bucket"),
            std::string::npos);

  // Span taxonomy: every pipeline phase shows up with region attribution.
  bool saw_join = false, saw_eval = false, saw_region_build = false;
  for (const SpanRecord& span : obs.spans.Snapshot()) {
    const std::string name = span.name;
    if (name == "join") saw_join = span.region >= 0;
    if (name == "eval") saw_eval = span.region >= 0;
    if (name == "region_build") saw_region_build = true;
  }
  EXPECT_TRUE(saw_join);
  EXPECT_TRUE(saw_eval);
  EXPECT_TRUE(saw_region_build);

  // The Chrome export is non-trivial and structurally a trace.
  const std::string trace = obs.ChromeTrace();
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
}

// Wall-phase buckets are measured on the serial driver thread inside the
// engine's overall wall interval, so their sum can never exceed
// wall_seconds — at any thread count (the phase spans bracket the parallel
// sections, they do not sum per-worker time).
TEST(ObsIntegrationTest, WallPhaseBucketsSumBelowWallSeconds) {
  auto [r, t] = MakeTables(Distribution::kIndependent, /*rows=*/600,
                           /*attrs=*/4, /*selectivity=*/0.02);
  const Workload workload =
      MakeSubspaceWorkload(4, 0, 7, PriorityPolicy::kUniform).value();
  for (int threads : {1, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const ExecutionReport report =
        RunCaqe(r, t, workload, threads, nullptr);
    const EngineStats& s = report.stats;
    const double phase_sum = s.wall_region_build_seconds +
                             s.wall_join_seconds + s.wall_eval_seconds +
                             s.wall_discard_seconds;
    EXPECT_GT(phase_sum, 0.0);
    EXPECT_LE(phase_sum, s.wall_seconds * (1.0 + 1e-9) + 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Serving integration: report text byte-identical with observability on.

TEST(ObsServingTest, ServingReportIdenticalWithObservabilityAttached) {
  GeneratorConfig cfg;
  cfg.num_rows = 300;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.02, 0.02};
  cfg.seed = 2014;
  const Table r = GenerateTable("R", cfg).value();
  cfg.seed = 2015;
  const Table t = GenerateTable("T", cfg).value();
  const std::vector<MappingFunction> dims = {
      MappingFunction{0, 0}, MappingFunction{1, 1}, MappingFunction{2, 2}};
  const std::vector<int> keys = {0, 1};

  TraceConfig trace_config;
  trace_config.num_requests = 8;
  trace_config.arrival_rate = 40.0;
  trace_config.seed = 2014;
  trace_config.reference_seconds = 0.1;
  const std::vector<TraceRequest> trace =
      MakeSyntheticTrace(trace_config, keys, 3);

  auto run = [&](Observability* obs) {
    ServeOptions options;
    options.target_regions = 64;
    options.obs = obs;
    auto server = CaqeServer::Create(r, t, dims, keys, options).value();
    SubmitTrace(*server, trace);
    return ServingReportText(server->Run().value());
  };

  const std::string off = run(nullptr);
  Observability obs;
  const std::string on = run(&obs);
  EXPECT_EQ(on, off);

  // The serving run populated admission metrics, TTFR histogram, and
  // per-request health timelines.
  const std::string prom = obs.metrics.PrometheusText();
  EXPECT_NE(prom.find("caqe_serve_admission_decisions_total"),
            std::string::npos);
  EXPECT_NE(prom.find("caqe_serve_time_to_first_result_vseconds_bucket"),
            std::string::npos);
  EXPECT_GT(obs.health.size(), 0u);
  bool saw_admission = false;
  for (const SpanRecord& span : obs.spans.Snapshot()) {
    if (std::string(span.name) == "admission" && span.query >= 0) {
      saw_admission = true;
    }
  }
  EXPECT_TRUE(saw_admission);
}

// The tentpole determinism gate, in-process: the audit ledger (minus wall
// time) must be byte-identical across thread counts, and every record must
// hang off the causal tree of its own request — no orphaned children.
TEST(ObsServingTest, AuditLedgerIsDeterministicAndCausallyConnected) {
  GeneratorConfig cfg;
  cfg.num_rows = 300;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.02, 0.02};
  cfg.seed = 2014;
  const Table r = GenerateTable("R", cfg).value();
  cfg.seed = 2015;
  const Table t = GenerateTable("T", cfg).value();
  const std::vector<MappingFunction> dims = {
      MappingFunction{0, 0}, MappingFunction{1, 1}, MappingFunction{2, 2}};
  const std::vector<int> keys = {0, 1};

  TraceConfig trace_config;
  trace_config.num_requests = 8;
  trace_config.arrival_rate = 40.0;
  trace_config.seed = 2014;
  trace_config.reference_seconds = 0.1;
  trace_config.cancel_fraction = 0.1;
  const std::vector<TraceRequest> trace =
      MakeSyntheticTrace(trace_config, keys, 3);

  auto run = [&](int threads) {
    Observability obs;
    ServeOptions options;
    options.target_regions = 64;
    options.num_threads = threads;
    options.obs = &obs;
    auto server = CaqeServer::Create(r, t, dims, keys, options).value();
    SubmitTrace(*server, trace);
    server->Run().value();
    return std::make_pair(obs.ledger.Jsonl(/*include_wall=*/false),
                          obs.ledger.Snapshot());
  };

  const auto [jsonl_t1, records] = run(1);
  const auto [jsonl_t8, records_t8] = run(8);
  EXPECT_EQ(jsonl_t1, jsonl_t8);
  ASSERT_FALSE(records.empty());

  // Connectivity: a record's parent is either 0 (the root arrival) or the
  // span of another record of the same request.
  std::map<int, std::set<uint64_t>> spans_of;
  for (const AuditRecord& record : records) {
    if (record.span != 0) spans_of[record.request_id].insert(record.span);
  }
  for (const AuditRecord& record : records) {
    if (record.parent == 0) continue;
    EXPECT_NE(spans_of[record.request_id].count(record.parent), 0u)
        << AuditRecordJson(record);
  }

  // Every submitted request reached a single terminal finish record, and
  // every request saw an arrival and a decision.
  std::map<int, int> finishes;
  std::set<int> arrived;
  std::set<int> decided;
  for (const AuditRecord& record : records) {
    if (record.kind == AuditKind::kFinish) finishes[record.request_id]++;
    if (record.kind == AuditKind::kArrival) arrived.insert(record.request_id);
    if (record.kind == AuditKind::kDecision) {
      decided.insert(record.request_id);
    }
  }
  EXPECT_EQ(finishes.size(), trace.size());
  for (const auto& [id, count] : finishes) {
    EXPECT_EQ(count, 1) << "request " << id;
  }
  EXPECT_EQ(arrived.size(), trace.size());
  EXPECT_EQ(decided.size(), trace.size());
}

}  // namespace
}  // namespace caqe
