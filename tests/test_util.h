// Shared helpers for CAQE tests: oracle computation and data setup.
#ifndef CAQE_TESTS_TEST_UTIL_H_
#define CAQE_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "data/generator.h"
#include "data/table.h"
#include "query/query.h"
#include "skyline/algorithms.h"
#include "skyline/point_set.h"

namespace caqe {
namespace testing {

/// Materializes the full projected join output of query `q` (nested loop —
/// the slow, obviously correct path).
inline PointSet FullJoinOutput(const Table& r, const Table& t,
                               const Workload& workload, int q) {
  const SjQuery& query = workload.query(q);
  PointSet out(workload.num_output_dims());
  std::vector<double> values;
  for (int64_t i = 0; i < r.num_rows(); ++i) {
    for (int64_t j = 0; j < t.num_rows(); ++j) {
      if (r.key(i, query.join_key) != t.key(j, query.join_key)) continue;
      if (!workload.SelectionsPass(q, r, i, t, j)) continue;
      workload.Project(r, i, t, j, values);
      out.Append(values);
    }
  }
  return out;
}

/// The reference skyline of query `q`, as sorted rows of preference-dim
/// values (in preference order — comparable across engines that report
/// full-width or preference-only tuples).
inline std::vector<std::vector<double>> OracleSkyline(const Table& r,
                                                      const Table& t,
                                                      const Workload& workload,
                                                      int q) {
  const PointSet output = FullJoinOutput(r, t, workload, q);
  const std::vector<int>& pref = workload.query(q).preference;
  const std::vector<int64_t> sky = BruteForceSkyline(output, pref);
  std::vector<std::vector<double>> rows;
  for (int64_t id : sky) {
    std::vector<double> row;
    for (int k : pref) row.push_back(output.row(id)[k]);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Projects a reported result row onto the query's preference dimensions.
/// Engines either report full-width output tuples or (per-query engines)
/// tuples already reduced to the preference dims in preference order.
inline std::vector<double> ProjectReported(const std::vector<double>& values,
                                           const Workload& workload, int q) {
  const std::vector<int>& pref = workload.query(q).preference;
  if (values.size() == pref.size()) return values;
  std::vector<double> row;
  for (int k : pref) row.push_back(values[k]);
  return row;
}

/// Generates an (R, T) pair with matching schemas and distinct seeds.
inline std::pair<Table, Table> MakeTables(Distribution dist, int64_t rows,
                                          int attrs, double selectivity,
                                          uint64_t seed = 11) {
  GeneratorConfig cfg;
  cfg.num_rows = rows;
  cfg.num_attrs = attrs;
  cfg.join_selectivities = {selectivity};
  cfg.distribution = dist;
  cfg.seed = seed;
  Table r = GenerateTable("R", cfg).value();
  cfg.seed = seed + 1;
  Table t = GenerateTable("T", cfg).value();
  return {std::move(r), std::move(t)};
}

}  // namespace testing
}  // namespace caqe

#endif  // CAQE_TESTS_TEST_UTIL_H_
