// Unit tests for the contract-driven optimizer: cost model, benefit model
// (Eq. 9/10), CSM (Eq. 8), Algorithm 1 mechanics, and weight feedback
// (Eq. 11).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "contracts/tracker.h"
#include "optimizer/scheduler.h"
#include "partition/partitioner.h"
#include "query/workload_generator.h"
#include "region/dependency_graph.h"
#include "region/region_builder.h"
#include "test_util.h"

namespace caqe {
namespace {

using ::caqe::testing::MakeTables;

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto [r, t] = MakeTables(Distribution::kIndependent, 300, 3, 0.05);
    r_ = std::make_unique<Table>(std::move(r));
    t_ = std::make_unique<Table>(std::move(t));
    workload_ =
        MakeSubspaceWorkload(3, 0, 4, PriorityPolicy::kUniform).value();
    part_r_ =
        std::make_unique<PartitionedTable>(PartitionTable(*r_, 2).value());
    part_t_ =
        std::make_unique<PartitionedTable>(PartitionTable(*t_, 2).value());
    rc_ = std::make_unique<RegionCollection>(
        BuildRegions(*part_r_, *part_t_, workload_).value());
    std::vector<Contract> contracts(workload_.num_queries(),
                                    MakeTimeStepContract(100.0));
    tracker_ = std::make_unique<SatisfactionTracker>(contracts);
  }

  ContractDrivenScheduler MakeScheduler(SchedulerOptions options = {}) {
    return ContractDrivenScheduler(rc_.get(), &workload_, tracker_.get(),
                                   &cost_, options);
  }

  std::unique_ptr<Table> r_;
  std::unique_ptr<Table> t_;
  Workload workload_;
  std::unique_ptr<PartitionedTable> part_r_;
  std::unique_ptr<PartitionedTable> part_t_;
  std::unique_ptr<RegionCollection> rc_;
  std::unique_ptr<SatisfactionTracker> tracker_;
  CostModel cost_;
};

TEST_F(SchedulerTest, DrainsEveryRegionExactlyOnce) {
  ContractDrivenScheduler scheduler = MakeScheduler();
  std::set<int> picked;
  while (scheduler.HasPending()) {
    const int region = scheduler.PickNext(0.0);
    EXPECT_TRUE(picked.insert(region).second) << "region picked twice";
    scheduler.OnRegionRemoved(region);
  }
  EXPECT_EQ(picked.size(), rc_->regions.size());
}

TEST_F(SchedulerTest, CostGrowsWithJoinSize) {
  ContractDrivenScheduler scheduler = MakeScheduler();
  // Compare two regions with different join sizes.
  int big = -1;
  int small = -1;
  for (const OutputRegion& region : rc_->regions) {
    if (big == -1 || region.join_size(0) > rc_->regions[big].join_size(0)) {
      big = region.id;
    }
    if (small == -1 ||
        region.join_size(0) < rc_->regions[small].join_size(0)) {
      small = region.id;
    }
  }
  ASSERT_NE(big, small);
  EXPECT_GT(scheduler.EstimateCost(big), scheduler.EstimateCost(small));
  EXPECT_GT(scheduler.EstimateCost(small), 0.0);
}

TEST_F(SchedulerTest, BenefitZeroForNonServedQuery) {
  ContractDrivenScheduler scheduler = MakeScheduler();
  for (const OutputRegion& region : rc_->regions) {
    for (int q = 0; q < workload_.num_queries(); ++q) {
      const double benefit = scheduler.EstimateBenefit(region.id, q);
      if (!region.rql.Contains(q)) {
        EXPECT_DOUBLE_EQ(benefit, 0.0);
      } else {
        EXPECT_GE(benefit, 0.0);
      }
    }
  }
}

TEST_F(SchedulerTest, CsmDropsOnceDeadlinePassed) {
  ContractDrivenScheduler scheduler = MakeScheduler();
  const int region = scheduler.PickNext(0.0);
  const double early = scheduler.Csm(region, 0.0);
  // Past the C1 deadline every estimated result has utility zero.
  const double late = scheduler.Csm(region, 1000.0);
  EXPECT_GT(early, 0.0);
  EXPECT_DOUBLE_EQ(late, 0.0);
}

TEST_F(SchedulerTest, PaperExampleTwentyWeights) {
  // Run-time satisfactions {0, 1, 0.7, 0} with all weights 1 must yield
  // {1.43, 1, 1.13, 1.43} (Example 20).
  std::vector<Contract> contracts(4, MakeTimeStepContract(10.0));
  SatisfactionTracker tracker(contracts);
  // Query 0 and 3: one useless (late) result each => metric 0.
  tracker.OnResult(0, 100.0);
  tracker.OnResult(3, 100.0);
  // Query 1: one on-time result => metric 1.
  tracker.OnResult(1, 1.0);
  // Query 2: 7 on-time, 3 late => metric 0.7.
  for (int i = 0; i < 7; ++i) tracker.OnResult(2, 1.0);
  for (int i = 0; i < 3; ++i) tracker.OnResult(2, 99.0);

  ContractDrivenScheduler scheduler(rc_.get(), &workload_, &tracker, &cost_,
                                    SchedulerOptions{});
  scheduler.UpdateWeights();
  EXPECT_NEAR(scheduler.weight(0), 1.0 + 1.0 / 2.3, 1e-9);   // 1.4348
  EXPECT_NEAR(scheduler.weight(1), 1.0, 1e-9);
  EXPECT_NEAR(scheduler.weight(2), 1.0 + 0.3 / 2.3, 1e-9);   // 1.1304
  EXPECT_NEAR(scheduler.weight(3), 1.0 + 1.0 / 2.3, 1e-9);
}

TEST_F(SchedulerTest, FeedbackDisabledKeepsWeightsAtOne) {
  SchedulerOptions options;
  options.feedback_enabled = false;
  tracker_->OnResult(0, 1.0);
  ContractDrivenScheduler scheduler = MakeScheduler(options);
  scheduler.UpdateWeights();
  for (int q = 0; q < workload_.num_queries(); ++q) {
    EXPECT_DOUBLE_EQ(scheduler.weight(q), 1.0);
  }
}

TEST_F(SchedulerTest, EqualSatisfactionLeavesWeightsUnchanged) {
  ContractDrivenScheduler scheduler = MakeScheduler();
  scheduler.UpdateWeights();  // All metrics zero => denominator zero.
  for (int q = 0; q < workload_.num_queries(); ++q) {
    EXPECT_DOUBLE_EQ(scheduler.weight(q), 1.0);
  }
}

TEST_F(SchedulerTest, CountDrivenPolicyIgnoresContracts) {
  SchedulerOptions options;
  options.contract_driven = false;
  ContractDrivenScheduler scheduler = MakeScheduler(options);
  const int region = scheduler.PickNext(0.0);
  // Count-driven scores are time-invariant.
  EXPECT_DOUBLE_EQ(scheduler.Csm(region, 0.0),
                   scheduler.Csm(region, 1e6));
}

TEST_F(SchedulerTest, PickNextPrefersHigherCsm) {
  ContractDrivenScheduler scheduler = MakeScheduler();
  const int first = scheduler.PickNext(0.0);
  // The picked region's CSM must be maximal among all pending regions that
  // are dependency-graph roots; verify it is at least the median score by
  // comparing against every pending region (roots are a subset).
  const double best = scheduler.Csm(first, 0.0);
  EXPECT_GT(best, 0.0);
}

TEST_F(SchedulerTest, BenefitShrinksWhenDominatingRegionPending) {
  // A region whose output box is fully covered by another pending region's
  // dominance shadow has ProgEst near zero; removing the dominator restores
  // the benefit. Find such a pair via the dependency graph.
  ContractDrivenScheduler scheduler = MakeScheduler();
  const DependencyGraph dg = DependencyGraph::Build(*rc_, workload_);
  for (int i = 0; i < dg.num_regions(); ++i) {
    for (const auto& [target, queries] : dg.out_edges(i)) {
      bool found = false;
      queries.ForEach([&](int q) {
        if (found) return;
        const double before = scheduler.EstimateBenefit(target, q);
        ContractDrivenScheduler fresh = MakeScheduler();
        fresh.OnRegionRemoved(i);
        const double after = fresh.EstimateBenefit(target, q);
        EXPECT_GE(after + 1e-12, before);
        found = true;
      });
      if (!queries.empty()) return;  // One pair suffices.
    }
  }
}

TEST_F(SchedulerTest, BenefitCacheMatchesFreshScheduler) {
  // Remove a prefix of regions from one scheduler; a freshly constructed
  // scheduler over the same mutated collection must agree on every benefit
  // (the dominated-fraction cache invalidates correctly).
  ContractDrivenScheduler warm = MakeScheduler();
  std::vector<int> removed;
  for (int i = 0; i < 5 && warm.HasPending(); ++i) {
    const int region = warm.PickNext(0.0);
    warm.OnRegionRemoved(region);
    removed.push_back(region);
  }
  // Rebuild a cold scheduler that never cached anything, with the same
  // pending set.
  ContractDrivenScheduler cold = MakeScheduler();
  for (int region : removed) cold.OnRegionRemoved(region);

  for (const OutputRegion& region : rc_->regions) {
    if (!warm.IsPending(region.id)) continue;
    for (int q = 0; q < workload_.num_queries(); ++q) {
      EXPECT_NEAR(warm.EstimateBenefit(region.id, q),
                  cold.EstimateBenefit(region.id, q), 1e-9)
          << "region " << region.id << " query " << q;
    }
  }
}

TEST_F(SchedulerTest, CsmScalesWithWeights) {
  // Boosting a query's weight (via feedback) raises the CSM of regions
  // serving it relative to an unweighted scheduler.
  std::vector<Contract> contracts(workload_.num_queries(),
                                  MakeTimeStepContract(100.0));
  SatisfactionTracker tracker(contracts);
  // Satisfy queries 1..n-1 fully; query 0 gets nothing => weight boost.
  for (int q = 1; q < workload_.num_queries(); ++q) {
    tracker.OnResult(q, 1.0);
  }
  ContractDrivenScheduler scheduler(rc_.get(), &workload_, &tracker, &cost_,
                                    SchedulerOptions{});
  // Find a region that actually promises results for query 0 (one whose
  // output box no other region's shadow fully covers).
  int region = -1;
  for (const OutputRegion& candidate : rc_->regions) {
    if (scheduler.EstimateBenefit(candidate.id, 0) > 0.0) {
      region = candidate.id;
      break;
    }
  }
  ASSERT_GE(region, 0);
  const double before = scheduler.Csm(region, 0.0);
  scheduler.UpdateWeights();
  const double after = scheduler.Csm(region, 0.0);
  // Query 0's weight was boosted and this region serves it with positive
  // expected yield, so the score strictly increases.
  EXPECT_GT(after, before);
  EXPECT_GT(scheduler.weight(0), 1.0);
}

}  // namespace
}  // namespace caqe
