// Differential oracle for the shared-plan engines: a deliberately naive
// reference executor — per-query nested-loop join, then an O(n^2) skyline
// written right here with no code shared with src/skyline — is compared
// against the engine over randomized workloads (seeds x dims x join
// selectivities x contract mixes), at every cell of
// threads {1, 8} x pipeline {off, on}.
//
// Two properties are asserted per cell:
//   1. Correctness: the reported result set of every query equals the
//      naive executor's skyline exactly.
//   2. Determinism: the full execution report (every counter, virtual
//      time, pScore, satisfaction, utility trace, and captured tuple with
//      its timestamp) is bit-identical to the threads=1/pipeline=off
//      reference.
//
// The third determinism axis, the SIMD build (CAQE_SIMD=OFF/ON), cannot be
// toggled in-process — kernel dispatch is a function-local static resolved
// once per process — so it is covered by scripts/run_simd_matrix.sh, which
// runs this whole test binary under both builds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "caqe/session.h"
#include "query/workload_generator.h"
#include "serve/server.h"
#include "serve/trace.h"
#include "test_util.h"

namespace caqe {
namespace {

// ---- The naive reference executor ----
//
// No partitioning, no regions, no sharing across queries, no incremental
// skyline maintenance: materialize each query's join output by brute force
// and keep exactly the rows no other row strictly dominates.

/// Strict dominance over `pref`, restated from the paper's Definition 2
/// (smaller is better): a <= b everywhere and a < b somewhere.
bool NaiveDominates(const std::vector<double>& a, const std::vector<double>& b,
                    const std::vector<int>& pref) {
  bool strictly_better = false;
  for (int k : pref) {
    if (a[k] > b[k]) return false;
    if (a[k] < b[k]) strictly_better = true;
  }
  return strictly_better;
}

/// Runs query `q` end to end the slow way; returns its skyline as sorted
/// preference-dim rows (the comparable form of integration_test).
std::vector<std::vector<double>> NaiveQueryResult(const Table& r,
                                                  const Table& t,
                                                  const Workload& workload,
                                                  int q) {
  const SjQuery& query = workload.query(q);
  std::vector<std::vector<double>> output;
  std::vector<double> values;
  for (int64_t i = 0; i < r.num_rows(); ++i) {
    for (int64_t j = 0; j < t.num_rows(); ++j) {
      if (r.key(i, query.join_key) != t.key(j, query.join_key)) continue;
      if (!workload.SelectionsPass(q, r, i, t, j)) continue;
      workload.Project(r, i, t, j, values);
      output.push_back(values);
    }
  }
  std::vector<std::vector<double>> skyline;
  for (size_t i = 0; i < output.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < output.size() && !dominated; ++j) {
      if (i == j) continue;
      dominated = NaiveDominates(output[j], output[i], query.preference);
    }
    if (dominated) continue;
    std::vector<double> row;
    for (int k : query.preference) row.push_back(output[i][k]);
    skyline.push_back(std::move(row));
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

std::vector<std::vector<double>> SortedReportedValues(
    const QueryReport& report, const Workload& workload, int q) {
  std::vector<std::vector<double>> rows;
  for (const ReportedResult& r : report.tuples) {
    rows.push_back(::caqe::testing::ProjectReported(r.values, workload, q));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Asserts bit-identity of every determinism-contract report field.
void ExpectReportsIdentical(const ExecutionReport& got,
                            const ExecutionReport& want) {
  EXPECT_EQ(got.stats.join_probes, want.stats.join_probes);
  EXPECT_EQ(got.stats.join_results, want.stats.join_results);
  EXPECT_EQ(got.stats.dominance_cmps, want.stats.dominance_cmps);
  EXPECT_EQ(got.stats.coarse_ops, want.stats.coarse_ops);
  EXPECT_EQ(got.stats.emitted_results, want.stats.emitted_results);
  EXPECT_EQ(got.stats.regions_built, want.stats.regions_built);
  EXPECT_EQ(got.stats.regions_processed, want.stats.regions_processed);
  EXPECT_EQ(got.stats.regions_discarded, want.stats.regions_discarded);
  EXPECT_EQ(got.stats.virtual_seconds, want.stats.virtual_seconds);
  EXPECT_EQ(got.workload_pscore, want.workload_pscore);
  EXPECT_EQ(got.average_satisfaction, want.average_satisfaction);
  ASSERT_EQ(got.queries.size(), want.queries.size());
  for (size_t q = 0; q < got.queries.size(); ++q) {
    const QueryReport& g = got.queries[q];
    const QueryReport& w = want.queries[q];
    EXPECT_EQ(g.results, w.results);
    EXPECT_EQ(g.pscore, w.pscore);
    EXPECT_EQ(g.satisfaction, w.satisfaction);
    ASSERT_EQ(g.utility_trace.size(), w.utility_trace.size());
    for (size_t i = 0; i < g.utility_trace.size(); ++i) {
      EXPECT_EQ(g.utility_trace[i].time, w.utility_trace[i].time);
      EXPECT_EQ(g.utility_trace[i].utility, w.utility_trace[i].utility);
    }
    ASSERT_EQ(g.tuples.size(), w.tuples.size());
    for (size_t i = 0; i < g.tuples.size(); ++i) {
      EXPECT_EQ(g.tuples[i].tuple_id, w.tuples[i].tuple_id);
      EXPECT_EQ(g.tuples[i].time, w.tuples[i].time);
      EXPECT_EQ(g.tuples[i].values, w.tuples[i].values);
    }
  }
}

/// One randomized differential case. Workload flavors: "subspace" uses a
/// single shared join key (maximum sharing), "random" draws per-query join
/// keys from `num_join_keys` predicates (partial sharing).
struct OracleCase {
  std::string name;
  std::string engine;
  std::string workload_kind;  // "subspace" | "random"
  Distribution dist = Distribution::kIndependent;
  int64_t rows = 300;
  int attrs = 4;
  int num_join_keys = 1;
  double selectivity = 0.02;
  int num_queries = 5;
  PriorityPolicy policy = PriorityPolicy::kUniform;
  std::string contract_mix;  // "log" | "mixed" | "all"
  uint64_t seed = 11;
};

Contract ContractFor(const OracleCase& c, int q) {
  if (c.contract_mix == "log") return MakeLogDecayContract(0.05);
  if (c.contract_mix == "mixed") {
    switch (q % 3) {
      case 0:
        return MakeLogDecayContract(0.02);
      case 1:
        return MakeTimeStepContract(1.0);
      default:
        return MakeCardinalityContract(0.1, 0.2);
    }
  }
  // "all": rotate through every contract class of Table 2.
  switch (q % 5) {
    case 0:
      return MakeTimeStepContract(0.8);
    case 1:
      return MakeLogDecayContract(0.05);
    case 2:
      return MakeHyperbolicDecayContract(0.5, 0.1);
    case 3:
      return MakeCardinalityContract(0.1, 0.2);
    default:
      return MakeHybridContract(0.1, 0.2, 0.1);
  }
}

std::pair<Table, Table> TablesFor(const OracleCase& c) {
  GeneratorConfig cfg;
  cfg.num_rows = c.rows;
  cfg.num_attrs = c.attrs;
  cfg.join_selectivities.assign(c.num_join_keys, c.selectivity);
  cfg.distribution = c.dist;
  cfg.seed = c.seed;
  Table r = GenerateTable("R", cfg).value();
  cfg.seed = c.seed + 1;
  Table t = GenerateTable("T", cfg).value();
  return {std::move(r), std::move(t)};
}

Workload WorkloadFor(const OracleCase& c) {
  if (c.workload_kind == "subspace") {
    return MakeSubspaceWorkload(c.attrs, /*join_key=*/0, c.num_queries,
                                c.policy, c.seed)
        .value();
  }
  return MakeRandomWorkload(c.attrs, c.num_join_keys, c.num_queries, c.policy,
                            c.seed)
      .value();
}

class OracleDifferentialTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OracleDifferentialTest, EngineMatchesNaiveExecutorAtEveryCell) {
  const OracleCase& c = GetParam();
  auto [r, t] = TablesFor(c);
  const Workload workload = WorkloadFor(c);
  std::vector<Contract> contracts;
  for (int q = 0; q < workload.num_queries(); ++q) {
    contracts.push_back(ContractFor(c, q));
  }

  // The naive executor's verdict, computed once per case.
  std::vector<std::vector<std::vector<double>>> naive;
  for (int q = 0; q < workload.num_queries(); ++q) {
    naive.push_back(NaiveQueryResult(r, t, workload, q));
  }

  bool have_reference = false;
  ExecutionReport reference;
  for (int threads : {1, 8}) {
    for (bool pipeline : {false, true}) {
      SCOPED_TRACE(c.name + " threads=" + std::to_string(threads) +
                   " pipeline=" + (pipeline ? "on" : "off"));
      ExecOptions options;
      options.capture_results = true;
      options.num_threads = threads;
      options.pipeline_regions = pipeline;
      std::unique_ptr<Engine> engine = MakeEngine(c.engine).value();
      const Result<ExecutionReport> result =
          engine->Execute(r, t, workload, contracts, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      const ExecutionReport& report = *result;

      ASSERT_EQ(report.queries.size(),
                static_cast<size_t>(workload.num_queries()));
      for (int q = 0; q < workload.num_queries(); ++q) {
        SCOPED_TRACE("query=" + workload.query(q).name);
        EXPECT_EQ(SortedReportedValues(report.queries[q], workload, q),
                  naive[q]);
        EXPECT_EQ(report.queries[q].results,
                  static_cast<int64_t>(naive[q].size()));
      }

      if (!have_reference) {
        reference = report;
        have_reference = true;
      } else {
        ExpectReportsIdentical(report, reference);
      }
    }
  }
}

std::string CaseName(const ::testing::TestParamInfo<OracleCase>& info) {
  return info.param.name;
}

std::vector<OracleCase> AllCases() {
  std::vector<OracleCase> cases;
  {
    // Maximum sharing, uniform priorities, one contract class.
    OracleCase c;
    c.name = "caqe_subspace_independent_log";
    c.engine = "CAQE";
    c.workload_kind = "subspace";
    c.dist = Distribution::kIndependent;
    c.rows = 300;
    c.attrs = 4;
    c.selectivity = 0.02;
    c.num_queries = 5;
    c.contract_mix = "log";
    c.seed = 101;
    cases.push_back(c);
  }
  {
    // Correlated data, two join predicates, random preferences, mixed
    // contracts — exercises partial sharing and multi-slot regions.
    OracleCase c;
    c.name = "caqe_random_correlated_mixed";
    c.engine = "CAQE";
    c.workload_kind = "random";
    c.dist = Distribution::kCorrelated;
    c.rows = 300;
    c.attrs = 5;
    c.num_join_keys = 2;
    c.selectivity = 0.04;
    c.num_queries = 6;
    c.policy = PriorityPolicy::kRandom;
    c.contract_mix = "mixed";
    c.seed = 202;
    cases.push_back(c);
  }
  {
    // Anti-correlated data (largest skylines), decreasing priorities.
    OracleCase c;
    c.name = "caqe_subspace_anticorrelated_mixed";
    c.engine = "CAQE";
    c.workload_kind = "subspace";
    c.dist = Distribution::kAntiCorrelated;
    c.rows = 250;
    c.attrs = 3;
    c.selectivity = 0.03;
    c.num_queries = 4;
    c.policy = PriorityPolicy::kDimDecreasing;
    c.contract_mix = "mixed";
    c.seed = 303;
    cases.push_back(c);
  }
  {
    // Dense join, every contract class of Table 2, bigger workload.
    OracleCase c;
    c.name = "caqe_random_independent_all";
    c.engine = "CAQE";
    c.workload_kind = "random";
    c.dist = Distribution::kIndependent;
    c.rows = 250;
    c.attrs = 4;
    c.num_join_keys = 2;
    c.selectivity = 0.05;
    c.num_queries = 8;
    c.policy = PriorityPolicy::kRandom;
    c.contract_mix = "all";
    c.seed = 404;
    cases.push_back(c);
  }
  {
    // The other shared-plan engine that grew the pipeline flag.
    OracleCase c;
    c.name = "progxe_subspace_independent_mixed";
    c.engine = "ProgXe+";
    c.workload_kind = "subspace";
    c.dist = Distribution::kIndependent;
    c.rows = 300;
    c.attrs = 4;
    c.selectivity = 0.02;
    c.num_queries = 5;
    c.contract_mix = "mixed";
    c.seed = 505;
    cases.push_back(c);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Randomized, OracleDifferentialTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// ---- Serving-layer oracle: calibration never changes correctness ----
//
// Self-tuning admission (--calibrate) may flip admit/defer/reject verdicts
// and their timing, but the result *stream* of every request that runs to
// completion must still be exactly its query's skyline — under both
// controllers. In particular a request completed in both legs emits the
// identical result set.
TEST(ServingOracleTest, CalibrationPreservesEmittedResultSets) {
  GeneratorConfig cfg;
  cfg.num_rows = 250;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.05, 0.05};
  cfg.seed = 606;
  const Table r = GenerateTable("R", cfg).value();
  cfg.seed = 607;
  const Table t = GenerateTable("T", cfg).value();
  const std::vector<MappingFunction> dims = {
      MappingFunction{0, 0}, MappingFunction{1, 1}, MappingFunction{2, 2}};

  TraceConfig trace_config;
  trace_config.num_requests = 12;
  trace_config.arrival_rate = 30.0;
  trace_config.seed = 606;
  trace_config.reference_seconds = 0.05;
  trace_config.deadline_fraction = 0.25;
  const std::vector<TraceRequest> trace =
      MakeSyntheticTrace(trace_config, {0, 1}, 3);

  // One reference workload holding every trace query, so the naive
  // executor and the projection helper see identical selection semantics.
  Workload reference;
  for (const MappingFunction& f : dims) reference.AddOutputDim(f);
  for (const TraceRequest& request : trace) reference.AddQuery(request.query);

  struct Leg {
    ServingReport report;
    std::vector<std::vector<std::vector<double>>> streamed;  // by request
  };
  const auto run_leg = [&](bool calibrate) {
    ServeOptions options;
    options.target_regions = 64;
    options.calibrate = calibrate;
    auto server =
        CaqeServer::Create(r, t, dims, {0, 1}, options).value();
    Leg leg;
    leg.streamed.resize(trace.size());
    std::vector<std::vector<int64_t>> ids(trace.size());
    SubmitTrace(*server, trace,
                [&](int request_id, int64_t tuple_id, double, double) {
                  ids[static_cast<size_t>(request_id)].push_back(tuple_id);
                });
    leg.report = server->Run().value();
    for (size_t q = 0; q < trace.size(); ++q) {
      for (int64_t tuple : ids[q]) {
        const double* values = server->store().row(tuple);
        leg.streamed[q].push_back(::caqe::testing::ProjectReported(
            std::vector<double>(values, values + 3), reference,
            static_cast<int>(q)));
      }
      std::sort(leg.streamed[q].begin(), leg.streamed[q].end());
    }
    return leg;
  };

  const Leg off = run_leg(false);
  const Leg on = run_leg(true);
  EXPECT_GE(on.report.completed, 1);

  int both_completed = 0;
  for (size_t q = 0; q < trace.size(); ++q) {
    SCOPED_TRACE("request " + std::to_string(q));
    const auto naive = NaiveQueryResult(r, t, reference, static_cast<int>(q));
    const bool off_done =
        off.report.requests[q].status == RequestStatus::kCompleted;
    const bool on_done =
        on.report.requests[q].status == RequestStatus::kCompleted;
    // Completion means the exact skyline streamed — with either controller.
    if (off_done) EXPECT_EQ(off.streamed[q], naive);
    if (on_done) EXPECT_EQ(on.streamed[q], naive);
    if (off_done && on_done) {
      ++both_completed;
      EXPECT_EQ(off.streamed[q], on.streamed[q]);
    }
  }
  EXPECT_GE(both_completed, 1);
}

}  // namespace
}  // namespace caqe
