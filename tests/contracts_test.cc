// Unit tests for contract utility functions (Table 2) and the satisfaction
// tracker (Eq. 7, run-time metric).
#include <gtest/gtest.h>

#include <cmath>

#include "contracts/tracker.h"
#include "contracts/utility.h"

namespace caqe {
namespace {

ResultContext At(double time, int64_t in_interval = 1, double total = 100.0) {
  ResultContext ctx;
  ctx.report_time = time;
  ctx.results_in_interval = in_interval;
  ctx.results_so_far = in_interval;
  ctx.estimated_total = total;
  return ctx;
}

TEST(UtilityTest, TimeStepContractC1) {
  const Contract c = MakeTimeStepContract(30.0);
  EXPECT_DOUBLE_EQ(c->Utility(At(0.0)), 1.0);
  EXPECT_DOUBLE_EQ(c->Utility(At(30.0)), 1.0);
  EXPECT_DOUBLE_EQ(c->Utility(At(30.0001)), 0.0);
  EXPECT_DOUBLE_EQ(c->Utility(At(1e9)), 0.0);
  EXPECT_DOUBLE_EQ(c->interval_seconds(), 0.0);
}

TEST(UtilityTest, LogDecayContractC2) {
  const Contract c = MakeLogDecayContract();
  EXPECT_DOUBLE_EQ(c->Utility(At(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(c->Utility(At(std::exp(1.0))), 1.0);
  EXPECT_NEAR(c->Utility(At(100.0)), 1.0 / std::log(100.0), 1e-12);
  // Monotone non-increasing and bounded in [0, 1].
  double last = 1.0;
  for (double ts = 1.0; ts < 1e6; ts *= 3.0) {
    const double u = c->Utility(At(ts));
    EXPECT_LE(u, last);
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
    last = u;
  }
}

TEST(UtilityTest, HyperbolicDecayContractC3) {
  const Contract c = MakeHyperbolicDecayContract(10.0);
  EXPECT_DOUBLE_EQ(c->Utility(At(5.0)), 1.0);
  EXPECT_DOUBLE_EQ(c->Utility(At(10.0)), 1.0);
  // Paper Section 7.2: a tuple at 12s under t=10 has utility 0.5.
  EXPECT_DOUBLE_EQ(c->Utility(At(12.0)), 0.5);
  EXPECT_DOUBLE_EQ(c->Utility(At(110.0)), 0.01);
}

TEST(UtilityTest, CardinalityContractC4) {
  // 10% of N=100 per interval => 10 tuples needed for full utility.
  const Contract c = MakeCardinalityContract(0.1, 60.0);
  EXPECT_DOUBLE_EQ(c->Utility(At(5.0, /*in_interval=*/10)), 1.0);
  EXPECT_DOUBLE_EQ(c->Utility(At(5.0, /*in_interval=*/15)), 1.0);
  // Eq. 3 shortfall: n/(N*frac) - 1.
  EXPECT_DOUBLE_EQ(c->Utility(At(5.0, /*in_interval=*/5)), 5.0 / 10.0 - 1.0);
  EXPECT_DOUBLE_EQ(c->Utility(At(5.0, /*in_interval=*/1)), 1.0 / 10.0 - 1.0);
  EXPECT_DOUBLE_EQ(c->interval_seconds(), 60.0);
}

TEST(UtilityTest, RateContractEq4) {
  // Consumer handles at most 5 tuples per interval (Eq. 4).
  const Contract c = MakeRateContract(5.0, 1.0);
  EXPECT_DOUBLE_EQ(c->Utility(At(0.0, 3)), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(c->Utility(At(0.0, 5)), 1.0);
  EXPECT_DOUBLE_EQ(c->Utility(At(0.0, 10)), 5.0 / 10.0);
}

TEST(UtilityTest, HybridContractC5IsProduct) {
  const Contract c = MakeHybridContract(0.1, 10.0);
  // Early and on-quota: time factor 1 (ts<=1), cardinality factor 1.
  EXPECT_DOUBLE_EQ(c->Utility(At(1.0, 10)), 1.0);
  // Late and on-quota: 1/ts.
  EXPECT_NEAR(c->Utility(At(20.0, 10)), 1.0 / 20.0, 1e-12);
  EXPECT_DOUBLE_EQ(c->interval_seconds(), 10.0);
}

TEST(UtilityTest, ProductCombinatorEq5) {
  const Contract c =
      MakeProductContract(MakeTimeStepContract(10.0), MakeRateContract(5, 2));
  EXPECT_DOUBLE_EQ(c->Utility(At(5.0, 5)), 1.0);
  EXPECT_DOUBLE_EQ(c->Utility(At(15.0, 5)), 0.0);  // Past the deadline.
  EXPECT_DOUBLE_EQ(c->interval_seconds(), 2.0);
  EXPECT_FALSE(c->name().empty());
}

TEST(TrackerTest, AccumulatesPScore) {
  SatisfactionTracker tracker({MakeTimeStepContract(10.0)});
  EXPECT_DOUBLE_EQ(tracker.OnResult(0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(tracker.OnResult(0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(tracker.OnResult(0, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(tracker.satisfaction(0).pscore, 2.0);
  EXPECT_EQ(tracker.satisfaction(0).results, 3);
  EXPECT_NEAR(tracker.RuntimeMetric(0), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(tracker.WorkloadPScore(), 2.0);
}

TEST(TrackerTest, IntervalAccountingResets) {
  // 2 results per 10s interval required (20% of N=10).
  SatisfactionTracker tracker({MakeCardinalityContract(0.2, 10.0)});
  tracker.SetEstimatedTotal(0, 10.0);
  // First interval: 1 then 2 results => shortfall then full.
  EXPECT_DOUBLE_EQ(tracker.OnResult(0, 1.0), 1.0 / 2.0 - 1.0);
  EXPECT_DOUBLE_EQ(tracker.OnResult(0, 2.0), 1.0);
  // New interval: count resets to 1.
  EXPECT_DOUBLE_EQ(tracker.OnResult(0, 11.0), 1.0 / 2.0 - 1.0);
}

TEST(TrackerTest, PreviewDoesNotMutate) {
  SatisfactionTracker tracker({MakeTimeStepContract(10.0)});
  const double preview = tracker.PreviewUtility(0, 5.0, 3);
  EXPECT_DOUBLE_EQ(preview, 1.0);
  EXPECT_EQ(tracker.satisfaction(0).results, 0);
  EXPECT_DOUBLE_EQ(tracker.PreviewUtility(0, 50.0, 3), 0.0);
}

TEST(TrackerTest, PreviewIncludesCurrentIntervalCounts) {
  SatisfactionTracker tracker({MakeCardinalityContract(0.5, 10.0)});
  tracker.SetEstimatedTotal(0, 10.0);  // Needs 5 per interval.
  tracker.OnResult(0, 1.0);
  tracker.OnResult(0, 2.0);
  // Previewing 3 more in the same interval reaches the quota (2+3 = 5).
  EXPECT_DOUBLE_EQ(tracker.PreviewUtility(0, 3.0, 3), 1.0);
  // In a later interval the current counts do not carry over.
  EXPECT_LT(tracker.PreviewUtility(0, 15.0, 3), 1.0);
}

TEST(TrackerTest, WorkloadAverageSatisfaction) {
  SatisfactionTracker tracker(
      {MakeTimeStepContract(10.0), MakeTimeStepContract(10.0)});
  tracker.OnResult(0, 1.0);   // utility 1
  tracker.OnResult(1, 20.0);  // utility 0
  tracker.OnResult(1, 21.0);  // utility 0
  EXPECT_DOUBLE_EQ(tracker.WorkloadAverageSatisfaction(), (1.0 + 0.0) / 2.0);
}

TEST(TrackerTest, NamesAreInformative) {
  EXPECT_NE(MakeTimeStepContract(30)->name().find("C1"), std::string::npos);
  EXPECT_NE(MakeLogDecayContract()->name().find("C2"), std::string::npos);
  EXPECT_NE(MakeHyperbolicDecayContract(5)->name().find("C3"),
            std::string::npos);
  EXPECT_NE(MakeCardinalityContract(0.1, 1)->name().find("C4"),
            std::string::npos);
}

TEST(UtilityTest, LogDecayTimeUnitRescales) {
  // With unit u the decay is 1/ln(ts/u): the same shape at any timescale.
  const Contract fast = MakeLogDecayContract(0.01);
  const Contract slow = MakeLogDecayContract(10.0);
  EXPECT_DOUBLE_EQ(fast->Utility(At(0.01)), 1.0);
  EXPECT_NEAR(fast->Utility(At(1.0)), 1.0 / std::log(100.0), 1e-12);
  EXPECT_DOUBLE_EQ(slow->Utility(At(1.0)), 1.0);
  EXPECT_NEAR(slow->Utility(At(1000.0)), 1.0 / std::log(100.0), 1e-12);
}

TEST(UtilityTest, HyperbolicDecayUnitRescales) {
  // 1/((ts - t)/unit): utility 0.5 one decay-unit past twice the knee.
  const Contract c = MakeHyperbolicDecayContract(1.0, 0.5);
  EXPECT_DOUBLE_EQ(c->Utility(At(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(c->Utility(At(1.5)), 1.0);   // Clamped at 1.
  EXPECT_DOUBLE_EQ(c->Utility(At(2.0)), 0.5);
  EXPECT_DOUBLE_EQ(c->Utility(At(6.0)), 0.1);
}

TEST(UtilityTest, HybridTimeUnitRescales) {
  const Contract c = MakeHybridContract(0.1, 10.0, 2.0);
  // On quota, within the time unit: full utility.
  EXPECT_DOUBLE_EQ(c->Utility(At(2.0, 10)), 1.0);
  // On quota, past the unit: unit/ts decay.
  EXPECT_NEAR(c->Utility(At(8.0, 10)), 2.0 / 8.0, 1e-12);
}

TEST(TrackerTest, SamplesRecordTrace) {
  SatisfactionTracker tracker({MakeTimeStepContract(10.0)});
  tracker.OnResult(0, 1.0);
  tracker.OnResult(0, 20.0);
  ASSERT_EQ(tracker.samples(0).size(), 2u);
  EXPECT_DOUBLE_EQ(tracker.samples(0)[0].time, 1.0);
  EXPECT_DOUBLE_EQ(tracker.samples(0)[0].utility, 1.0);
  EXPECT_DOUBLE_EQ(tracker.samples(0)[1].utility, 0.0);
}

TEST(TrackerTest, ProgressiveSatisfactionRewardsEarliness) {
  SatisfactionTracker early({MakeTimeStepContract(100.0)});
  SatisfactionTracker late({MakeTimeStepContract(100.0)});
  for (int i = 0; i < 10; ++i) {
    early.OnResult(0, 1.0);
    late.OnResult(0, 50.0);
  }
  const double horizon = 100.0;
  EXPECT_GT(early.ProgressiveSatisfaction(0, horizon),
            late.ProgressiveSatisfaction(0, horizon));
  // Instant full-utility delivery approaches 1.
  EXPECT_NEAR(early.ProgressiveSatisfaction(0, horizon), 0.99, 0.011);
  // Exactly halfway through the horizon: area factor 0.5.
  EXPECT_NEAR(late.ProgressiveSatisfaction(0, horizon), 0.5, 1e-9);
}

TEST(TrackerTest, ProgressiveSatisfactionEdgeCases) {
  SatisfactionTracker tracker({MakeTimeStepContract(10.0)});
  EXPECT_DOUBLE_EQ(tracker.ProgressiveSatisfaction(0, 10.0), 0.0);
  tracker.OnResult(0, 20.0);  // Past horizon: contributes nothing.
  EXPECT_DOUBLE_EQ(tracker.ProgressiveSatisfaction(0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(tracker.ProgressiveSatisfaction(0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(tracker.WorkloadProgressiveSatisfaction(10.0), 0.0);
}

}  // namespace
}  // namespace caqe
