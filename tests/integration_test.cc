// End-to-end correctness: every engine must report, for every query,
// exactly the reference skyline of that query's join output — and report it
// progressively without ever retracting a result.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "caqe/session.h"
#include "skyline/dominance.h"
#include "query/workload_generator.h"
#include "test_util.h"

namespace caqe {
namespace {

using ::caqe::testing::MakeTables;
using ::caqe::testing::OracleSkyline;

struct EngineCase {
  std::string engine;
  Distribution dist;
  int num_queries;
};

class EngineCorrectnessTest : public ::testing::TestWithParam<EngineCase> {};

std::vector<std::vector<double>> SortedReportedValues(
    const QueryReport& report, const Workload& workload, int q) {
  std::vector<std::vector<double>> rows;
  for (const ReportedResult& r : report.tuples) {
    rows.push_back(::caqe::testing::ProjectReported(r.values, workload, q));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST_P(EngineCorrectnessTest, ReportsExactlyTheOracleSkyline) {
  const EngineCase& param = GetParam();
  auto [r, t] = MakeTables(param.dist, /*rows=*/400, /*attrs=*/4,
                           /*selectivity=*/0.02);
  const Workload workload =
      MakeSubspaceWorkload(/*num_output_dims=*/4, /*join_key=*/0,
                           param.num_queries, PriorityPolicy::kUniform)
          .value();

  std::vector<Contract> contracts;
  for (int q = 0; q < workload.num_queries(); ++q) {
    contracts.push_back(MakeLogDecayContract());
  }

  ExecOptions options;
  options.capture_results = true;
  std::unique_ptr<Engine> engine = MakeEngine(param.engine).value();
  const Result<ExecutionReport> result =
      engine->Execute(r, t, workload, contracts, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ExecutionReport& report = *result;

  ASSERT_EQ(report.queries.size(), static_cast<size_t>(param.num_queries));
  for (int q = 0; q < workload.num_queries(); ++q) {
    SCOPED_TRACE("engine=" + param.engine + " query=" +
                 workload.query(q).name);
    const auto oracle = OracleSkyline(r, t, workload, q);
    const auto reported = SortedReportedValues(report.queries[q], workload, q);
    EXPECT_EQ(reported, oracle);
    EXPECT_EQ(report.queries[q].results,
              static_cast<int64_t>(oracle.size()));

    // Progressive reports carry non-decreasing timestamps.
    double last = 0.0;
    for (const ReportedResult& tuple : report.queries[q].tuples) {
      EXPECT_GE(tuple.time, last);
      last = tuple.time;
    }
  }
  EXPECT_GT(report.stats.virtual_seconds, 0.0);
}

std::string CaseName(const ::testing::TestParamInfo<EngineCase>& info) {
  std::string name = info.param.engine + "_" +
                     DistributionName(info.param.dist) + "_q" +
                     std::to_string(info.param.num_queries);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

std::vector<EngineCase> AllCases() {
  std::vector<EngineCase> cases;
  for (const char* engine :
       {"CAQE", "S-JFSL", "JFSL", "SSMJ", "SSMJ+", "ProgXe+", "CAQE-nofb",
        "CAQE-noprune", "CAQE-count"}) {
    for (Distribution dist :
         {Distribution::kIndependent, Distribution::kCorrelated,
          Distribution::kAntiCorrelated}) {
      cases.push_back({engine, dist, 5});
    }
  }
  // Workload-size sweep on one engine pair.
  for (int nq : {1, 3, 11}) {
    cases.push_back({"CAQE", Distribution::kIndependent, nq});
    cases.push_back({"ProgXe+", Distribution::kIndependent, nq});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineCorrectnessTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// CAQE must remain exact with tie-heavy data when DVA mode is off.
TEST(TieSafetyTest, CaqeExactWithoutDvaOnTieHeavyData) {
  // Integer-quantized attributes force massive ties.
  GeneratorConfig cfg;
  cfg.num_rows = 300;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.05};
  cfg.seed = 5;
  Table raw_r = GenerateTable("R", cfg).value();
  cfg.seed = 6;
  Table raw_t = GenerateTable("T", cfg).value();
  auto quantize = [](const Table& in) {
    Table out(in.name(), in.num_attrs(), in.num_keys());
    std::vector<double> attrs(in.num_attrs());
    std::vector<int32_t> keys(in.num_keys());
    for (int64_t row = 0; row < in.num_rows(); ++row) {
      for (int a = 0; a < in.num_attrs(); ++a) {
        attrs[a] = std::floor(in.attr(row, a) / 20.0);  // 5 distinct values.
      }
      for (int k = 0; k < in.num_keys(); ++k) keys[k] = in.key(row, k);
      out.AppendRow(attrs, keys);
    }
    return out;
  };
  Table r = quantize(raw_r);
  Table t = quantize(raw_t);

  const Workload workload =
      MakeSubspaceWorkload(3, 0, 4, PriorityPolicy::kUniform).value();
  std::vector<Contract> contracts(workload.num_queries(),
                                  MakeLogDecayContract());
  ExecOptions options;
  options.capture_results = true;
  options.dva_mode = false;

  std::unique_ptr<Engine> engine = MakeEngine("CAQE").value();
  const Result<ExecutionReport> result =
      engine->Execute(r, t, workload, contracts, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (int q = 0; q < workload.num_queries(); ++q) {
    SCOPED_TRACE(workload.query(q).name);
    EXPECT_EQ(SortedReportedValues(result->queries[q], workload, q),
              OracleSkyline(r, t, workload, q));
  }
}

// Same tie-heavy data with gating enabled: the strict-dominator form of
// the Theorem-1 shortcut must stay exact without the DVA assumption.
TEST(TieSafetyTest, CaqeExactWithDvaGatingOnTieHeavyData) {
  GeneratorConfig cfg;
  cfg.num_rows = 300;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.05};
  cfg.seed = 5;
  Table raw_r = GenerateTable("R", cfg).value();
  cfg.seed = 6;
  Table raw_t = GenerateTable("T", cfg).value();
  auto quantize = [](const Table& in) {
    Table out(in.name(), in.num_attrs(), in.num_keys());
    std::vector<double> attrs(in.num_attrs());
    std::vector<int32_t> keys(in.num_keys());
    for (int64_t row = 0; row < in.num_rows(); ++row) {
      for (int a = 0; a < in.num_attrs(); ++a) {
        attrs[a] = std::floor(in.attr(row, a) / 20.0);
      }
      for (int k = 0; k < in.num_keys(); ++k) keys[k] = in.key(row, k);
      out.AppendRow(attrs, keys);
    }
    return out;
  };
  Table r = quantize(raw_r);
  Table t = quantize(raw_t);

  const Workload workload =
      MakeSubspaceWorkload(3, 0, 4, PriorityPolicy::kUniform).value();
  std::vector<Contract> contracts(workload.num_queries(),
                                  MakeLogDecayContract());
  ExecOptions options;
  options.capture_results = true;
  options.dva_mode = true;

  for (const char* name : {"CAQE", "S-JFSL"}) {
    SCOPED_TRACE(name);
    const Result<ExecutionReport> result =
        MakeEngine(name).value()->Execute(r, t, workload, contracts,
                                          options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (int q = 0; q < workload.num_queries(); ++q) {
      SCOPED_TRACE(workload.query(q).name);
      EXPECT_EQ(SortedReportedValues(result->queries[q], workload, q),
                OracleSkyline(r, t, workload, q));
    }
  }
}

// Multi-predicate workloads: queries joining on different key columns.
TEST(MultiPredicateTest, CaqeExactAcrossJoinPredicates) {
  GeneratorConfig cfg;
  cfg.num_rows = 300;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.05, 0.02};
  cfg.seed = 21;
  Table r = GenerateTable("R", cfg).value();
  cfg.seed = 22;
  Table t = GenerateTable("T", cfg).value();

  Workload workload;
  for (int k = 0; k < 3; ++k) workload.AddOutputDim({k, k, 1.0, 1.0});
  workload.AddQuery({"Q1", /*join_key=*/0, {0, 1}, 0.9});
  workload.AddQuery({"Q2", /*join_key=*/1, {1, 2}, 0.6});
  workload.AddQuery({"Q3", /*join_key=*/0, {0, 1, 2}, 0.4});
  workload.AddQuery({"Q4", /*join_key=*/1, {0, 2}, 0.2});

  std::vector<Contract> contracts(workload.num_queries(),
                                  MakeHyperbolicDecayContract(5.0));
  ExecOptions options;
  options.capture_results = true;

  for (const char* name :
       {"CAQE", "S-JFSL", "JFSL", "SSMJ", "SSMJ+", "ProgXe+"}) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = MakeEngine(name).value();
    const Result<ExecutionReport> result =
        engine->Execute(r, t, workload, contracts, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (int q = 0; q < workload.num_queries(); ++q) {
      SCOPED_TRACE(workload.query(q).name);
      EXPECT_EQ(SortedReportedValues(result->queries[q], workload, q),
                OracleSkyline(r, t, workload, q));
    }
  }
}

// Per-query selection predicates (the paper's Section 4.1 generalization):
// engines must stay exact when queries filter their inputs, including when
// queries with different selections share a join predicate.
TEST(SelectionTest, MixedSelectionsStayExactAcrossEngines) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 350, 3, 0.04);
  Workload workload;
  for (int k = 0; k < 3; ++k) workload.AddOutputDim({k, k, 1.0, 1.0});
  // Q1: unfiltered. Q2: cheap-R only. Q3: mid-range T. Q4: both sides,
  // same predicate as the others (three distinct plan groups result).
  workload.AddQuery({"Q1", 0, {0, 1}, 0.9});
  workload.AddQuery(
      {"Q2", 0, {0, 2}, 0.7, {{true, 0, 1.0, 40.0}}});
  workload.AddQuery(
      {"Q3", 0, {1, 2}, 0.5, {{false, 1, 25.0, 75.0}}});
  workload.AddQuery({"Q4",
                     0,
                     {0, 1, 2},
                     0.3,
                     {{true, 0, 1.0, 60.0}, {false, 2, 10.0, 90.0}}});

  std::vector<Contract> contracts(workload.num_queries(),
                                  MakeLogDecayContract(0.01));
  ExecOptions options;
  options.capture_results = true;

  for (const char* name :
       {"CAQE", "S-JFSL", "JFSL", "SSMJ", "SSMJ+", "ProgXe+", "CAQE-nofb",
        "CAQE-noprune"}) {
    SCOPED_TRACE(name);
    const Result<ExecutionReport> result =
        MakeEngine(name).value()->Execute(r, t, workload, contracts,
                                          options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (int q = 0; q < workload.num_queries(); ++q) {
      SCOPED_TRACE(workload.query(q).name);
      EXPECT_EQ(SortedReportedValues(result->queries[q], workload, q),
                OracleSkyline(r, t, workload, q));
    }
  }
}

TEST(SelectionTest, EmptySelectionRangeYieldsNoResults) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 100, 2, 0.1);
  Workload workload;
  workload.AddOutputDim({0, 0, 1.0, 1.0});
  workload.AddOutputDim({1, 1, 1.0, 1.0});
  // Selection range outside the attribute domain [1, 100].
  workload.AddQuery(
      {"Q1", 0, {0, 1}, 1.0, {{true, 0, 500.0, 600.0}}});
  std::vector<Contract> contracts = {MakeLogDecayContract()};
  ExecOptions options;
  options.capture_results = true;
  for (const char* name : {"CAQE", "JFSL", "SSMJ", "ProgXe+"}) {
    SCOPED_TRACE(name);
    const ExecutionReport report = MakeEngine(name)
                                       .value()
                                       ->Execute(r, t, workload, contracts,
                                                 options)
                                       .value();
    EXPECT_EQ(report.queries[0].results, 0);
  }
}

TEST(SelectionTest, CoarsePruneRemainsSoundWithSelections) {
  // A narrow selection leaves most regions only *overlapping* (not
  // guaranteed); the guarded coarse prune must not discard results.
  auto [r, t] = MakeTables(Distribution::kCorrelated, 300, 2, 0.05);
  Workload workload;
  workload.AddOutputDim({0, 0, 1.0, 1.0});
  workload.AddOutputDim({1, 1, 1.0, 1.0});
  workload.AddQuery(
      {"Q1", 0, {0, 1}, 1.0, {{true, 0, 45.0, 55.0}}});
  workload.AddQuery({"Q2", 0, {0, 1}, 0.5});
  std::vector<Contract> contracts(workload.num_queries(),
                                  MakeLogDecayContract(0.01));
  ExecOptions options;
  options.capture_results = true;
  const ExecutionReport report = MakeEngine("CAQE")
                                     .value()
                                     ->Execute(r, t, workload, contracts,
                                               options)
                                     .value();
  for (int q = 0; q < workload.num_queries(); ++q) {
    SCOPED_TRACE(workload.query(q).name);
    EXPECT_EQ(SortedReportedValues(report.queries[q], workload, q),
              OracleSkyline(r, t, workload, q));
  }
}

// The no-retraction guarantee, checked directly: once a result is
// reported for a query, no later-reported result of that query may
// dominate it (progressive engines would otherwise have surfaced a tuple
// that the final skyline excludes).
class EmissionSafetyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EmissionSafetyTest, NoEmittedResultIsDominatedLater) {
  const uint64_t seed = GetParam();
  auto [r, t] = MakeTables(static_cast<Distribution>(seed % 3),
                           300 + static_cast<int64_t>(seed % 100), 3, 0.04,
                           seed);
  const Workload workload =
      MakeSubspaceWorkload(3, 0, 4, PriorityPolicy::kUniform, seed).value();
  std::vector<Contract> contracts(workload.num_queries(),
                                  MakeHyperbolicDecayContract(0.05, 0.05));
  ExecOptions options;
  options.capture_results = true;

  for (const char* name : {"CAQE", "S-JFSL", "ProgXe+", "CAQE-count"}) {
    SCOPED_TRACE(std::string(name) + " seed=" + std::to_string(seed));
    const ExecutionReport report = MakeEngine(name)
                                       .value()
                                       ->Execute(r, t, workload, contracts,
                                                 options)
                                       .value();
    for (int q = 0; q < workload.num_queries(); ++q) {
      SCOPED_TRACE(workload.query(q).name);
      // Normalize to preference-dim projections (per-query engines report
      // sliced tuples, shared engines full-width ones).
      std::vector<std::vector<double>> projected;
      for (const ReportedResult& tuple : report.queries[q].tuples) {
        projected.push_back(
            ::caqe::testing::ProjectReported(tuple.values, workload, q));
      }
      std::vector<int> dims;
      for (size_t k = 0; k < workload.query(q).preference.size(); ++k) {
        dims.push_back(static_cast<int>(k));
      }
      for (size_t i = 0; i < projected.size(); ++i) {
        for (size_t j = i + 1; j < projected.size(); ++j) {
          EXPECT_FALSE(
              Dominates(projected[j].data(), projected[i].data(), dims))
              << "result " << j << " dominates earlier result " << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmissionSafetyTest,
                         ::testing::Values<uint64_t>(7, 19, 42, 77));

// Degenerate inputs must be handled gracefully by every engine.
TEST(EdgeCaseTest, EmptyJoinOutputYieldsEmptyResults) {
  // Disjoint key domains: R uses keys {0..9}, T gets keys shifted out of
  // range, so no pair ever joins.
  GeneratorConfig cfg;
  cfg.num_rows = 100;
  cfg.num_attrs = 2;
  cfg.join_selectivities = {0.1};
  cfg.seed = 1;
  Table r = GenerateTable("R", cfg).value();
  cfg.seed = 2;
  Table raw_t = GenerateTable("T", cfg).value();
  Table t("T", 2, 1);
  for (int64_t row = 0; row < raw_t.num_rows(); ++row) {
    t.AppendRow({raw_t.attr(row, 0), raw_t.attr(row, 1)},
                {static_cast<int32_t>(raw_t.key(row, 0) + 1000)});
  }

  const Workload workload =
      MakeSubspaceWorkload(2, 0, 1, PriorityPolicy::kUniform).value();
  std::vector<Contract> contracts = {MakeLogDecayContract()};
  ExecOptions options;
  options.capture_results = true;
  for (const char* name :
       {"CAQE", "S-JFSL", "JFSL", "SSMJ", "SSMJ+", "ProgXe+"}) {
    SCOPED_TRACE(name);
    const Result<ExecutionReport> result =
        MakeEngine(name).value()->Execute(r, t, workload, contracts,
                                          options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->queries[0].results, 0);
    EXPECT_EQ(result->stats.emitted_results, 0);
  }
}

TEST(EdgeCaseTest, SingleRowTables) {
  Table r("R", 2, 1);
  r.AppendRow({3.0, 4.0}, {7});
  Table t("T", 2, 1);
  t.AppendRow({1.0, 2.0}, {7});
  Workload workload;
  workload.AddOutputDim({0, 0, 1.0, 1.0});
  workload.AddOutputDim({1, 1, 1.0, 1.0});
  workload.AddQuery({"Q1", 0, {0, 1}, 1.0});
  std::vector<Contract> contracts = {MakeTimeStepContract(10.0)};
  ExecOptions options;
  options.capture_results = true;
  for (const char* name : {"CAQE", "S-JFSL", "JFSL", "SSMJ", "ProgXe+"}) {
    SCOPED_TRACE(name);
    const ExecutionReport report = MakeEngine(name)
                                       .value()
                                       ->Execute(r, t, workload, contracts,
                                                 options)
                                       .value();
    ASSERT_EQ(report.queries[0].results, 1);
    EXPECT_DOUBLE_EQ(report.queries[0].tuples[0].values[0], 4.0);
    EXPECT_DOUBLE_EQ(report.queries[0].tuples[0].values[1], 6.0);
    EXPECT_DOUBLE_EQ(report.queries[0].satisfaction, 1.0);
  }
}

TEST(EdgeCaseTest, CrossProductJoinSelectivityOne) {
  // Selectivity 1 => a single key value => the join is a full cross
  // product; engines stay exact.
  auto [r, t] = MakeTables(Distribution::kIndependent, 60, 2, 1.0);
  const Workload workload =
      MakeSubspaceWorkload(2, 0, 1, PriorityPolicy::kUniform).value();
  std::vector<Contract> contracts = {MakeLogDecayContract()};
  ExecOptions options;
  options.capture_results = true;
  for (const char* name : {"CAQE", "SSMJ+"}) {
    SCOPED_TRACE(name);
    const ExecutionReport report = MakeEngine(name)
                                       .value()
                                       ->Execute(r, t, workload, contracts,
                                                 options)
                                       .value();
    EXPECT_EQ(SortedReportedValues(report.queries[0], workload, 0),
              OracleSkyline(r, t, workload, 0));
  }
}

// Quad-tree partitioning must leave every engine exact.
TEST(QuadTreePartitioningTest, CaqeExactWithQuadTree) {
  auto [r, t] = MakeTables(Distribution::kCorrelated, 400, 3, 0.03);
  const Workload workload =
      MakeSubspaceWorkload(3, 0, 4, PriorityPolicy::kUniform).value();
  std::vector<Contract> contracts(workload.num_queries(),
                                  MakeLogDecayContract(0.01));
  ExecOptions options;
  options.capture_results = true;
  options.partition_strategy = PartitionStrategy::kQuadTree;
  for (const char* name : {"CAQE", "ProgXe+"}) {
    SCOPED_TRACE(name);
    const Result<ExecutionReport> result =
        MakeEngine(name).value()->Execute(r, t, workload, contracts,
                                          options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (int q = 0; q < workload.num_queries(); ++q) {
      SCOPED_TRACE(workload.query(q).name);
      EXPECT_EQ(SortedReportedValues(result->queries[q], workload, q),
                OracleSkyline(r, t, workload, q));
    }
  }
}

// The virtual clock makes runs deterministic: identical inputs produce
// bit-identical reports.
TEST(DeterminismTest, IdenticalRunsProduceIdenticalReports) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 400, 3, 0.03);
  const Workload workload =
      MakeSubspaceWorkload(3, 0, 4, PriorityPolicy::kUniform).value();
  std::vector<Contract> contracts(workload.num_queries(),
                                  MakeHyperbolicDecayContract(0.1, 0.1));
  ExecOptions options;
  options.capture_results = true;

  for (const char* name : {"CAQE", "ProgXe+"}) {
    SCOPED_TRACE(name);
    const ExecutionReport a = MakeEngine(name)
                                  .value()
                                  ->Execute(r, t, workload, contracts,
                                            options)
                                  .value();
    const ExecutionReport b = MakeEngine(name)
                                  .value()
                                  ->Execute(r, t, workload, contracts,
                                            options)
                                  .value();
    EXPECT_EQ(a.stats.join_results, b.stats.join_results);
    EXPECT_EQ(a.stats.dominance_cmps, b.stats.dominance_cmps);
    EXPECT_EQ(a.stats.virtual_seconds, b.stats.virtual_seconds);
    EXPECT_EQ(a.workload_pscore, b.workload_pscore);
    for (int q = 0; q < workload.num_queries(); ++q) {
      ASSERT_EQ(a.queries[q].tuples.size(), b.queries[q].tuples.size());
      for (size_t i = 0; i < a.queries[q].tuples.size(); ++i) {
        EXPECT_EQ(a.queries[q].tuples[i].time, b.queries[q].tuples[i].time);
        EXPECT_EQ(a.queries[q].tuples[i].values,
                  b.queries[q].tuples[i].values);
      }
    }
  }
}

// Seed fuzzing: randomized workloads stay exact across engines.
class FuzzSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeedTest, RandomWorkloadsAreExact) {
  const uint64_t seed = GetParam();
  GeneratorConfig cfg;
  cfg.num_rows = 200 + static_cast<int64_t>(seed % 150);
  cfg.num_attrs = 3 + static_cast<int>(seed % 2);
  cfg.join_selectivities = {0.03, 0.08};
  cfg.distribution = static_cast<Distribution>(seed % 3);
  cfg.join_key_correlation = (seed % 5 == 0) ? 0.8 : 0.0;
  cfg.seed = seed;
  Table r = GenerateTable("R", cfg).value();
  cfg.seed = seed + 1000;
  Table t = GenerateTable("T", cfg).value();

  const Workload workload =
      MakeRandomWorkload(cfg.num_attrs, 2, 5, PriorityPolicy::kRandom, seed)
          .value();
  std::vector<Contract> contracts;
  for (int q = 0; q < workload.num_queries(); ++q) {
    contracts.push_back(q % 2 == 0 ? MakeLogDecayContract(0.01)
                                   : MakeCardinalityContract(0.2, 0.1));
  }
  ExecOptions options;
  options.capture_results = true;
  options.dva_mode = (seed % 2 == 0);

  for (const char* name : {"CAQE", "S-JFSL", "SSMJ+"}) {
    SCOPED_TRACE(std::string(name) + " seed=" + std::to_string(seed));
    const Result<ExecutionReport> result =
        MakeEngine(name).value()->Execute(r, t, workload, contracts,
                                          options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (int q = 0; q < workload.num_queries(); ++q) {
      SCOPED_TRACE(workload.query(q).name);
      EXPECT_EQ(SortedReportedValues(result->queries[q], workload, q),
                OracleSkyline(r, t, workload, q));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Range<uint64_t>(100, 112));

// Engines fill the always-on utility trace consistently with the captured
// tuples, and the CAQE core reports a coherent event trace.
TEST(TraceTest, EventTraceIsCoherent) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 400, 3, 0.03);
  const Workload workload =
      MakeSubspaceWorkload(3, 0, 4, PriorityPolicy::kUniform).value();
  std::vector<Contract> contracts(workload.num_queries(),
                                  MakeLogDecayContract(0.01));
  ExecOptions options;
  std::vector<ExecEvent> events;
  options.trace = &events;

  const ExecutionReport report = MakeEngine("CAQE")
                                     .value()
                                     ->Execute(r, t, workload, contracts,
                                               options)
                                     .value();
  int64_t scheduled = 0;
  int64_t discarded = 0;
  int64_t emitted = 0;
  double last_time = 0.0;
  for (const ExecEvent& event : events) {
    EXPECT_GE(event.vtime, last_time);
    last_time = event.vtime;
    switch (event.kind) {
      case ExecEvent::Kind::kRegionScheduled:
        ++scheduled;
        EXPECT_GE(event.region, 0);
        break;
      case ExecEvent::Kind::kRegionDiscarded:
        ++discarded;
        break;
      case ExecEvent::Kind::kResultsEmitted:
        emitted += event.count;
        EXPECT_GE(event.query, 0);
        break;
      case ExecEvent::Kind::kQueryPruned:
      case ExecEvent::Kind::kQueryAdmitted:
      case ExecEvent::Kind::kQueryRetired:
      case ExecEvent::Kind::kQueryRepreviewed:
        break;
    }
  }
  EXPECT_EQ(scheduled, report.stats.regions_processed);
  EXPECT_EQ(discarded + report.stats.regions_processed,
            report.stats.regions_built);
  EXPECT_EQ(emitted, report.stats.emitted_results);
  // The always-on utility trace agrees with the per-query counts.
  for (const QueryReport& query : report.queries) {
    EXPECT_EQ(static_cast<int64_t>(query.utility_trace.size()),
              query.results);
  }
}

// Sharing must pay off: CAQE generates no more join results and no more
// dominance comparisons than the non-shared JFSL baseline.
TEST(EfficiencyTest, CaqeDoesLessWorkThanJfsl) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 600, 4, 0.02);
  const Workload workload =
      MakeSubspaceWorkload(4, 0, 11, PriorityPolicy::kUniform).value();
  std::vector<Contract> contracts(workload.num_queries(),
                                  MakeLogDecayContract());
  ExecOptions options;

  const ExecutionReport caqe = MakeEngine("CAQE")
                                   .value()
                                   ->Execute(r, t, workload, contracts,
                                             options)
                                   .value();
  const ExecutionReport jfsl = MakeEngine("JFSL")
                                   .value()
                                   ->Execute(r, t, workload, contracts,
                                             options)
                                   .value();
  EXPECT_LT(caqe.stats.join_results, jfsl.stats.join_results);
  EXPECT_LT(caqe.stats.dominance_cmps, jfsl.stats.dominance_cmps);
}

}  // namespace
}  // namespace caqe
