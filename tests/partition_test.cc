// Unit and property tests for input partitioning and join signatures.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/thread_pool.h"
#include "data/generator.h"
#include "partition/partitioner.h"

namespace caqe {
namespace {

Table SmallTable() {
  Table t("T", 2, 1);
  t.AppendRow({1.0, 1.0}, {1});
  t.AppendRow({2.0, 9.0}, {2});
  t.AppendRow({9.0, 2.0}, {1});
  t.AppendRow({9.5, 9.5}, {3});
  return t;
}

TEST(PartitionTest, RejectsBadInputs) {
  const Table t = SmallTable();
  EXPECT_FALSE(PartitionTable(t, 0).ok());
  Table empty("E", 2, 0);
  EXPECT_FALSE(PartitionTable(empty, 2).ok());
}

TEST(PartitionTest, SingleCellHoldsEverything) {
  const Table t = SmallTable();
  const PartitionedTable p = PartitionTable(t, 1).value();
  ASSERT_EQ(p.num_cells(), 1);
  EXPECT_EQ(p.cell(0).rows.size(), 4u);
  EXPECT_DOUBLE_EQ(p.cell(0).lower[0], 1.0);
  EXPECT_DOUBLE_EQ(p.cell(0).upper[0], 9.5);
}

TEST(PartitionTest, CellsPartitionAllRows) {
  GeneratorConfig cfg;
  cfg.num_rows = 1000;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.1};
  const Table t = GenerateTable("T", cfg).value();
  for (int cpd : {1, 2, 3, 5}) {
    const PartitionedTable p = PartitionTable(t, cpd).value();
    EXPECT_EQ(p.TotalRows(), t.num_rows());
    std::set<int64_t> seen;
    for (const LeafCell& cell : p.cells()) {
      EXPECT_FALSE(cell.rows.empty());  // Empty cells are dropped.
      for (int64_t row : cell.rows) {
        EXPECT_TRUE(seen.insert(row).second) << "row in two cells";
      }
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(t.num_rows()));
  }
}

TEST(PartitionTest, BoundsAreTightOverMembers) {
  GeneratorConfig cfg;
  cfg.num_rows = 500;
  cfg.num_attrs = 2;
  const Table t = GenerateTable("T", cfg).value();
  const PartitionedTable p = PartitionTable(t, 4).value();
  for (const LeafCell& cell : p.cells()) {
    for (int k = 0; k < t.num_attrs(); ++k) {
      double lo = 1e300;
      double hi = -1e300;
      for (int64_t row : cell.rows) {
        lo = std::min(lo, t.attr(row, k));
        hi = std::max(hi, t.attr(row, k));
      }
      EXPECT_DOUBLE_EQ(cell.lower[k], lo);
      EXPECT_DOUBLE_EQ(cell.upper[k], hi);
    }
  }
}

TEST(PartitionTest, SignaturesHoldExactlyMemberKeys) {
  GeneratorConfig cfg;
  cfg.num_rows = 400;
  cfg.num_attrs = 2;
  cfg.join_selectivities = {0.1, 0.05};
  const Table t = GenerateTable("T", cfg).value();
  const PartitionedTable p = PartitionTable(t, 3).value();
  for (const LeafCell& cell : p.cells()) {
    ASSERT_EQ(cell.signatures.size(), 2u);
    for (int j = 0; j < 2; ++j) {
      std::set<int32_t> expected;
      for (int64_t row : cell.rows) expected.insert(t.key(row, j));
      const std::set<int32_t> actual(cell.signatures[j].begin(),
                                     cell.signatures[j].end());
      EXPECT_EQ(actual, expected);
      EXPECT_TRUE(std::is_sorted(cell.signatures[j].begin(),
                                 cell.signatures[j].end()));
      // Counts align and sum to the member count.
      ASSERT_EQ(cell.signature_counts[j].size(), cell.signatures[j].size());
      int64_t total = 0;
      for (int32_t c : cell.signature_counts[j]) total += c;
      EXPECT_EQ(total, static_cast<int64_t>(cell.rows.size()));
    }
  }
}

TEST(SignatureTest, IntersectionCases) {
  EXPECT_TRUE(SignaturesIntersect({1, 3, 5}, {5, 9}));
  EXPECT_FALSE(SignaturesIntersect({1, 3, 5}, {2, 4, 6}));
  EXPECT_FALSE(SignaturesIntersect({}, {1}));
  EXPECT_FALSE(SignaturesIntersect({}, {}));
  int64_t ops = 0;
  EXPECT_TRUE(SignaturesIntersect({1, 2, 3}, {3}, &ops));
  EXPECT_GT(ops, 0);
}

TEST(SignatureTest, ExactJoinSizeMatchesBruteForce) {
  // keys/counts: a = {1:2, 3:1, 7:4}, b = {3:5, 7:2, 9:1}.
  const std::vector<int32_t> ka = {1, 3, 7};
  const std::vector<int32_t> ca = {2, 1, 4};
  const std::vector<int32_t> kb = {3, 7, 9};
  const std::vector<int32_t> cb = {5, 2, 1};
  EXPECT_EQ(ExactJoinSize(ka, ca, kb, cb), 1 * 5 + 4 * 2);
  EXPECT_EQ(ExactJoinSize(ka, ca, {}, {}), 0);
}

TEST(SignatureTest, ExactJoinSizeAgainstNestedLoop) {
  GeneratorConfig cfg;
  cfg.num_rows = 200;
  cfg.num_attrs = 2;
  cfg.join_selectivities = {0.05};
  cfg.seed = 3;
  const Table r = GenerateTable("R", cfg).value();
  cfg.seed = 4;
  const Table t = GenerateTable("T", cfg).value();
  const PartitionedTable pr = PartitionTable(r, 2).value();
  const PartitionedTable pt = PartitionTable(t, 2).value();
  for (const LeafCell& cr : pr.cells()) {
    for (const LeafCell& ct : pt.cells()) {
      int64_t brute = 0;
      for (int64_t i : cr.rows) {
        for (int64_t j : ct.rows) {
          if (r.key(i, 0) == t.key(j, 0)) ++brute;
        }
      }
      EXPECT_EQ(ExactJoinSize(cr.signatures[0], cr.signature_counts[0],
                              ct.signatures[0], ct.signature_counts[0]),
                brute);
      // Intersection test agrees with size > 0.
      EXPECT_EQ(SignaturesIntersect(cr.signatures[0], ct.signatures[0]),
                brute > 0);
    }
  }
}

TEST(SliceVectorTest, DoublesRoundRobin) {
  EXPECT_EQ(ChooseSliceVector(4, 1), (std::vector<int>{1, 1, 1, 1}));
  EXPECT_EQ(ChooseSliceVector(4, 2), (std::vector<int>{2, 1, 1, 1}));
  EXPECT_EQ(ChooseSliceVector(4, 8), (std::vector<int>{2, 2, 2, 1}));
  EXPECT_EQ(ChooseSliceVector(4, 16), (std::vector<int>{2, 2, 2, 2}));
  EXPECT_EQ(ChooseSliceVector(4, 64), (std::vector<int>{4, 4, 2, 2}));
  EXPECT_EQ(ChooseSliceVector(2, 9), (std::vector<int>{4, 2}));
  // Cell count never exceeds the target.
  for (int d : {1, 2, 3, 5}) {
    for (int64_t target : {1, 3, 7, 20, 100, 1000}) {
      int64_t cells = 1;
      for (int s : ChooseSliceVector(d, target)) cells *= s;
      EXPECT_LE(cells, target);
      EXPECT_GT(cells * 2, target / 2);
    }
  }
}

TEST(PartitionTest, SliceVectorPartitioningCoversRows) {
  GeneratorConfig cfg;
  cfg.num_rows = 500;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.1};
  const Table t = GenerateTable("T", cfg).value();
  const PartitionedTable p =
      PartitionTableSlices(t, {3, 2, 1}).value();
  EXPECT_EQ(p.TotalRows(), t.num_rows());
  EXPECT_LE(p.num_cells(), 6);
  EXPECT_FALSE(PartitionTableSlices(t, {3, 2}).ok());      // Wrong arity.
  EXPECT_FALSE(PartitionTableSlices(t, {3, 0, 1}).ok());   // Zero slices.
}

TEST(QuadTreeTest, RejectsBadInputs) {
  const Table t = SmallTable();
  EXPECT_FALSE(PartitionTableQuadTree(t, 0).ok());
  EXPECT_FALSE(PartitionTableQuadTree(t, 10, -1).ok());
  Table empty("E", 2, 0);
  EXPECT_FALSE(PartitionTableQuadTree(empty, 10).ok());
}

TEST(QuadTreeTest, PartitionsAllRowsDisjointly) {
  GeneratorConfig cfg;
  cfg.num_rows = 1200;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.1};
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kCorrelated,
        Distribution::kAntiCorrelated}) {
    cfg.distribution = dist;
    const Table t = GenerateTable("T", cfg).value();
    const PartitionedTable p = PartitionTableQuadTree(t, 100).value();
    EXPECT_EQ(p.TotalRows(), t.num_rows());
    std::set<int64_t> seen;
    for (const LeafCell& cell : p.cells()) {
      EXPECT_FALSE(cell.rows.empty());
      // Cell populations respect the limit (max_depth not hit at this
      // size).
      EXPECT_LE(cell.rows.size(), 100u);
      for (int64_t row : cell.rows) {
        EXPECT_TRUE(seen.insert(row).second);
      }
      // Tight bounds.
      for (int k = 0; k < t.num_attrs(); ++k) {
        for (int64_t row : cell.rows) {
          EXPECT_GE(t.attr(row, k), cell.lower[k]);
          EXPECT_LE(t.attr(row, k), cell.upper[k]);
        }
      }
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(t.num_rows()));
  }
}

TEST(QuadTreeTest, BalancesSkewBetterThanGrid) {
  // Correlated data piles up along the diagonal; the quad tree adapts
  // while the grid leaves most populated cells huge.
  GeneratorConfig cfg;
  cfg.num_rows = 4000;
  cfg.num_attrs = 2;
  cfg.distribution = Distribution::kCorrelated;
  const Table t = GenerateTable("T", cfg).value();
  const PartitionedTable grid = PartitionTable(t, 4).value();
  const PartitionedTable quad = PartitionTableQuadTree(t, 250).value();
  size_t grid_max = 0;
  for (const LeafCell& cell : grid.cells()) {
    grid_max = std::max(grid_max, cell.rows.size());
  }
  size_t quad_max = 0;
  for (const LeafCell& cell : quad.cells()) {
    quad_max = std::max(quad_max, cell.rows.size());
  }
  EXPECT_LE(quad_max, 250u);
  EXPECT_GT(grid_max, quad_max);
}

TEST(QuadTreeTest, PoolBuildMatchesSerialBuild) {
  // The parallel quad-tree build must be a pure work-split: cell order,
  // bounds, and row lists stay byte-identical to the serial recursion
  // regardless of pool size.
  GeneratorConfig cfg;
  cfg.num_rows = 3000;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.05};
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kCorrelated,
        Distribution::kAntiCorrelated}) {
    cfg.distribution = dist;
    const Table t = GenerateTable("T", cfg).value();
    const PartitionedTable serial = PartitionTableQuadTree(t, 64).value();
    const PartitionedTable serial_target =
        PartitionTableQuadTreeTarget(t, 40).value();
    for (const int threads : {2, 7}) {
      ThreadPool pool(threads);
      const PartitionedTable pooled =
          PartitionTableQuadTree(t, 64, /*max_depth=*/16, &pool).value();
      const PartitionedTable pooled_target =
          PartitionTableQuadTreeTarget(t, 40, /*max_depth=*/16, &pool)
              .value();
      const auto expect_identical = [](const PartitionedTable& a,
                                       const PartitionedTable& b) {
        ASSERT_EQ(a.num_cells(), b.num_cells());
        for (int c = 0; c < a.num_cells(); ++c) {
          EXPECT_EQ(a.cell(c).rows, b.cell(c).rows) << "cell " << c;
          EXPECT_EQ(a.cell(c).lower, b.cell(c).lower) << "cell " << c;
          EXPECT_EQ(a.cell(c).upper, b.cell(c).upper) << "cell " << c;
        }
      };
      expect_identical(pooled, serial);
      expect_identical(pooled_target, serial_target);
    }
  }
}

TEST(QuadTreeTest, IdenticalPointsTerminate) {
  Table t("T", 2, 1);
  for (int i = 0; i < 100; ++i) t.AppendRow({5.0, 5.0}, {1});
  const PartitionedTable p = PartitionTableQuadTree(t, 10).value();
  ASSERT_EQ(p.num_cells(), 1);
  EXPECT_EQ(p.cell(0).rows.size(), 100u);
}

}  // namespace
}  // namespace caqe
