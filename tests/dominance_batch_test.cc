// Differential tests: the batch dominance kernels (dispatched SIMD and
// forced-scalar) must agree element-for-element with the one-pair scalar
// comparators of dominance.h on every candidate, including widths that are
// not a multiple of any vector lane count, tie-heavy quantized data, and
// NaN-free extreme magnitudes.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "skyline/dominance.h"
#include "skyline/dominance_batch.h"

namespace caqe {
namespace {

/// Reference for the kBatch*Strict bits: x strictly better than y in every
/// compared dimension (vacuously true when dims is empty).
bool StrictEverywhere(const double* x, const double* y,
                      const std::vector<int>& dims) {
  for (int k : dims) {
    if (!(x[k] < y[k])) return false;
  }
  return true;
}

/// One full-width probe plus `n` full-width candidate rows and the matching
/// column-gathered view over `dims`.
struct Block {
  std::vector<int> dims;
  std::vector<double> probe;                     // Full width.
  std::vector<std::vector<double>> candidates;   // Full-width rows.
  SubspaceView view;
  std::vector<double> gathered_probe;
};

/// Draws one value. Quantized mode draws small integers so exact ties and
/// all-dimension strict relations both occur often; otherwise a continuous
/// value with occasional extreme magnitudes (the kernels do unordered-safe
/// comparisons, but inputs stay NaN-free by contract).
double DrawValue(Rng& rng, bool quantize) {
  if (quantize) return static_cast<double>(rng.UniformInt(0, 3));
  if (rng.Bernoulli(0.05)) return rng.Bernoulli(0.5) ? 1e300 : -1e300;
  return rng.Uniform(-10.0, 10.0);
}

Block MakeBlock(Rng& rng, int width, std::vector<int> dims, int64_t n,
                bool quantize) {
  Block block;
  block.dims = std::move(dims);
  block.probe.resize(width);
  for (double& v : block.probe) v = DrawValue(rng, quantize);
  block.view.Reset(block.dims);
  block.candidates.resize(static_cast<size_t>(n));
  for (auto& row : block.candidates) {
    row.resize(width);
    if (rng.Bernoulli(0.1)) {
      row = block.probe;  // Exact duplicate: must decode to kEqual.
    } else {
      for (double& v : row) v = DrawValue(rng, quantize);
    }
    block.view.PushPoint(row.data());
  }
  block.gathered_probe.resize(block.dims.size());
  GatherPoint(block.probe.data(), block.dims, block.gathered_probe.data());
  return block;
}

/// The sweep shared by the kernel tests: widths and candidate counts chosen
/// to hit every lane-tail combination (n % 4 and n % 2 all values), strided
/// and reordered dimension subsets, tie-heavy and continuous data.
void ForEachConfig(
    const std::function<void(Rng&, int, const std::vector<int>&, int64_t,
                             bool)>& fn) {
  struct DimsCase {
    int width;
    std::vector<int> dims;
  };
  const std::vector<DimsCase> dims_cases = {
      {1, {0}},
      {2, {0, 1}},
      {4, {0, 1, 2, 3}},
      {4, {3, 0, 2}},        // Reordered, strided subset.
      {6, {5, 1, 3}},
      {10, {0, 2, 4, 6, 8, 9}},
  };
  const std::vector<int64_t> counts = {0, 1, 2, 3, 4, 5, 7, 8, 15, 33, 100};
  Rng rng(20140605);
  for (const DimsCase& dc : dims_cases) {
    for (int64_t n : counts) {
      for (bool quantize : {false, true}) {
        fn(rng, dc.width, dc.dims, n, quantize);
      }
    }
  }
}

TEST(DominanceBatchTest, FlagsMatchScalarComparatorEverywhere) {
  ForEachConfig([](Rng& rng, int width, const std::vector<int>& dims,
                   int64_t n, bool quantize) {
    const Block block = MakeBlock(rng, width, dims, n, quantize);
    std::vector<uint8_t> dispatched(static_cast<size_t>(n) + 1, 0xAB);
    std::vector<uint8_t> scalar(static_cast<size_t>(n) + 1, 0xCD);
    BatchDominanceFlags(block.gathered_probe.data(), block.view, 0, n,
                        dispatched.data());
    BatchDominanceFlagsScalar(block.gathered_probe.data(), block.view, 0, n,
                              scalar.data());
    for (int64_t j = 0; j < n; ++j) {
      const uint8_t f = dispatched[static_cast<size_t>(j)];
      ASSERT_EQ(f, scalar[static_cast<size_t>(j)])
          << "dispatched/scalar disagree at row " << j;
      const double* cand = block.candidates[static_cast<size_t>(j)].data();
      ASSERT_EQ(BatchDomResult(f),
                CompareDominance(block.probe.data(), cand, dims))
          << "flag decode differs from CompareDominance at row " << j;
      ASSERT_EQ((f & kBatchAStrict) != 0,
                StrictEverywhere(block.probe.data(), cand, dims))
          << "A-strict bit wrong at row " << j;
      ASSERT_EQ((f & kBatchBStrict) != 0,
                StrictEverywhere(cand, block.probe.data(), dims))
          << "B-strict bit wrong at row " << j;
    }
    // Kernels must not write past end - begin flag bytes.
    EXPECT_EQ(dispatched[static_cast<size_t>(n)], 0xAB);
    EXPECT_EQ(scalar[static_cast<size_t>(n)], 0xCD);

    // A sub-range call must reproduce the matching slice of the full run
    // (exercises unaligned column offsets inside the vector loops).
    if (n >= 5) {
      std::vector<uint8_t> slice(static_cast<size_t>(n - 3));
      BatchDominanceFlags(block.gathered_probe.data(), block.view, 2, n - 1,
                          slice.data());
      for (int64_t j = 2; j < n - 1; ++j) {
        ASSERT_EQ(slice[static_cast<size_t>(j - 2)],
                  dispatched[static_cast<size_t>(j)])
            << "sub-range flags differ at row " << j;
      }
    }
  });
}

TEST(DominanceBatchTest, WeakMatchesScalarComparatorEverywhere) {
  ForEachConfig([](Rng& rng, int width, const std::vector<int>& dims,
                   int64_t n, bool quantize) {
    const Block block = MakeBlock(rng, width, dims, n, quantize);
    std::vector<uint8_t> dispatched(static_cast<size_t>(n) + 1, 0xAB);
    std::vector<uint8_t> scalar(static_cast<size_t>(n) + 1, 0xCD);
    BatchWeaklyDominates(block.gathered_probe.data(), block.view, 0, n,
                         dispatched.data());
    BatchWeaklyDominatesScalar(block.gathered_probe.data(), block.view, 0, n,
                               scalar.data());
    for (int64_t j = 0; j < n; ++j) {
      const double* cand = block.candidates[static_cast<size_t>(j)].data();
      ASSERT_EQ(dispatched[static_cast<size_t>(j)],
                scalar[static_cast<size_t>(j)])
          << "dispatched/scalar disagree at row " << j;
      ASSERT_EQ(dispatched[static_cast<size_t>(j)] != 0,
                WeaklyDominates(block.probe.data(), cand, dims))
          << "weak-dominance bit differs from WeaklyDominates at row " << j;
    }
    EXPECT_EQ(dispatched[static_cast<size_t>(n)], 0xAB);
    EXPECT_EQ(scalar[static_cast<size_t>(n)], 0xCD);
  });
}

TEST(DominanceBatchTest, CompareDominanceWrapperMatchesScalar) {
  Rng rng(7);
  const std::vector<int> dims = {0, 1, 2, 3, 4};
  const Block block = MakeBlock(rng, 5, dims, 33, /*quantize=*/true);
  std::vector<DomResult> results(33);
  BatchCompareDominance(block.gathered_probe.data(), block.view, 0, 33,
                        results.data());
  for (int64_t j = 0; j < 33; ++j) {
    EXPECT_EQ(results[static_cast<size_t>(j)],
              CompareDominance(block.probe.data(),
                               block.candidates[static_cast<size_t>(j)].data(),
                               dims));
  }
}

TEST(DominanceBatchTest, ZeroDimsIsEqualAndVacuouslyStrict) {
  Rng rng(11);
  const Block block =
      MakeBlock(rng, 3, std::vector<int>{}, 9, /*quantize=*/false);
  std::vector<uint8_t> flags(9);
  BatchDominanceFlags(block.gathered_probe.data(), block.view, 0, 9,
                      flags.data());
  for (uint8_t f : flags) {
    EXPECT_EQ(BatchDomResult(f), DomResult::kEqual);
    EXPECT_TRUE((f & kBatchAStrict) != 0);
    EXPECT_TRUE((f & kBatchBStrict) != 0);
  }
}

TEST(DominanceBatchTest, DispatcherReportsKnownIsa) {
  const std::string isa = BatchKernelIsaName();
  EXPECT_TRUE(isa == "avx512" || isa == "avx2" || isa == "neon" ||
              isa == "scalar")
      << isa;
  EXPECT_EQ(BatchKernelSimdActive(), isa != "scalar");
#if defined(CAQE_SIMD_DISABLED)
  EXPECT_EQ(isa, "scalar");
#endif
}

TEST(DominanceBatchTest, AvailableIsasEndWithScalarAndIncludeDispatcher) {
  const std::vector<const char*> isas = BatchKernelAvailableIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_STREQ(isas.back(), "scalar");
  bool found = false;
  for (const char* isa : isas) {
    if (std::strcmp(isa, BatchKernelIsaName()) == 0) found = true;
  }
  EXPECT_TRUE(found) << "dispatcher ISA missing from available list";
  // An ISA that does not exist must be rejected without touching output.
  SubspaceView view(std::vector<int>{0});
  double probe = 0.0;
  EXPECT_FALSE(
      BatchDominanceFlagsForIsa("mmx", &probe, view, 0, 0, nullptr));
}

// Every backend the build + CPU can run (not just the dispatcher's pick)
// must agree byte-for-byte with the scalar reference — this is what makes
// reports bit-identical when CAQE_SIMD pins a narrower ISA.
TEST(DominanceBatchTest, EveryAvailableIsaMatchesScalar) {
  const std::vector<const char*> isas = BatchKernelAvailableIsas();
  ForEachConfig([&isas](Rng& rng, int width, const std::vector<int>& dims,
                        int64_t n, bool quantize) {
    const Block block = MakeBlock(rng, width, dims, n, quantize);
    std::vector<uint8_t> ref_flags(static_cast<size_t>(n) + 1, 0xCD);
    std::vector<uint8_t> ref_weak(static_cast<size_t>(n) + 1, 0xCD);
    BatchDominanceFlagsScalar(block.gathered_probe.data(), block.view, 0, n,
                              ref_flags.data());
    BatchWeaklyDominatesScalar(block.gathered_probe.data(), block.view, 0, n,
                               ref_weak.data());
    for (const char* isa : isas) {
      std::vector<uint8_t> flags(static_cast<size_t>(n) + 1, 0xAB);
      std::vector<uint8_t> weak(static_cast<size_t>(n) + 1, 0xAB);
      ASSERT_TRUE(BatchDominanceFlagsForIsa(isa, block.gathered_probe.data(),
                                            block.view, 0, n, flags.data()))
          << isa;
      ASSERT_TRUE(BatchWeaklyDominatesForIsa(isa, block.gathered_probe.data(),
                                             block.view, 0, n, weak.data()))
          << isa;
      for (int64_t j = 0; j < n; ++j) {
        ASSERT_EQ(flags[static_cast<size_t>(j)],
                  ref_flags[static_cast<size_t>(j)])
            << isa << " flags differ at row " << j;
        ASSERT_EQ(weak[static_cast<size_t>(j)],
                  ref_weak[static_cast<size_t>(j)])
            << isa << " weak bits differ at row " << j;
      }
      EXPECT_EQ(flags[static_cast<size_t>(n)], 0xAB) << isa;
      EXPECT_EQ(weak[static_cast<size_t>(n)], 0xAB) << isa;
    }
  });
}

}  // namespace
}  // namespace caqe
