// PackedBoxTree structural invariants plus differential tests for the
// tree-indexed coarse phase: the indexed region build and coarse prune must
// reproduce the flat-scan results (regions, lineages, discard decisions,
// coarse_ops) exactly, and the large-N spot check runs the full engine
// under the report-hash oracle across threads x coarse_index.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "../bench/bench_util.h"
#include "common/rng.h"
#include "partition/cell_index.h"
#include "partition/partitioner.h"
#include "query/workload_generator.h"
#include "region/dependency_graph.h"
#include "region/region_builder.h"
#include "test_util.h"

namespace caqe {
namespace {

using ::caqe::testing::MakeTables;

struct BoxSet {
  int width = 0;
  std::vector<std::vector<double>> lo;
  std::vector<std::vector<double>> hi;
};

BoxSet RandomBoxes(Rng& rng, int64_t n, int width, bool points) {
  BoxSet boxes;
  boxes.width = width;
  boxes.lo.resize(static_cast<size_t>(n));
  boxes.hi.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    auto& lo = boxes.lo[static_cast<size_t>(i)];
    auto& hi = boxes.hi[static_cast<size_t>(i)];
    lo.resize(width);
    hi.resize(width);
    for (int k = 0; k < width; ++k) {
      // Quantized corners: exact ties across entries exercise the sort
      // tie-break and the boundary cases of the classify/dominate tests.
      const double a = static_cast<double>(rng.UniformInt(0, 20));
      const double b = points ? a : static_cast<double>(rng.UniformInt(0, 20));
      lo[k] = std::min(a, b);
      hi[k] = std::max(a, b);
    }
  }
  return boxes;
}

PackedBoxTree BuildTree(const BoxSet& boxes) {
  PackedBoxTree tree;
  tree.Build(
      boxes.width, static_cast<int64_t>(boxes.lo.size()),
      [&](int64_t i) { return boxes.lo[static_cast<size_t>(i)].data(); },
      [&](int64_t i) { return boxes.hi[static_cast<size_t>(i)].data(); });
  return tree;
}

// Recursively checks every structural invariant of one subtree and returns
// the set of slots it covers.
void CheckNode(const PackedBoxTree& tree, int32_t v, const BoxSet& boxes,
               std::vector<int>& slot_seen) {
  const PackedBoxTree::Node& node = tree.nodes()[static_cast<size_t>(v)];
  const int w = tree.width();
  ASSERT_LT(node.entry_begin, node.entry_end);
  int64_t min_pos = tree.num_entries();
  std::vector<double> mbr_lo(w, 1e300), mbr_hi(w, -1e300);
  if (node.child_count == 0) {
    // Leaf: within capacity, slots ascend by original entry id, and each
    // packed slot holds an exact copy of its entry's box.
    ASSERT_LE(node.entry_end - node.entry_begin, PackedBoxTree::kLeafCap);
    int64_t prev_id = -1;
    for (int64_t s = node.entry_begin; s < node.entry_end; ++s) {
      const int64_t id = tree.slot_entry_id(s);
      ASSERT_GT(id, prev_id) << "leaf slots must ascend by entry id";
      prev_id = id;
      ASSERT_GE(id, 0);
      ASSERT_LT(id, tree.num_entries());
      ++slot_seen[static_cast<size_t>(id)];
      for (int k = 0; k < w; ++k) {
        ASSERT_EQ(tree.slot_lower(s)[k],
                  boxes.lo[static_cast<size_t>(id)][k]);
        ASSERT_EQ(tree.slot_upper(s)[k],
                  boxes.hi[static_cast<size_t>(id)][k]);
        mbr_lo[k] = std::min(mbr_lo[k], tree.slot_lower(s)[k]);
        mbr_hi[k] = std::max(mbr_hi[k], tree.slot_upper(s)[k]);
      }
      min_pos = std::min(min_pos, id);
    }
  } else {
    // Internal: children cover the node's slot run contiguously in order,
    // and fanout stays within target.
    ASSERT_LE(node.child_count, PackedBoxTree::kFanout);
    ASSERT_GE(node.child_count, 2);
    int64_t cursor = node.entry_begin;
    for (int32_t c = 0; c < node.child_count; ++c) {
      const int32_t child =
          tree.child_ids()[static_cast<size_t>(node.child_begin + c)];
      const PackedBoxTree::Node& cn = tree.nodes()[static_cast<size_t>(child)];
      ASSERT_EQ(cn.entry_begin, cursor)
          << "children must tile the parent's slot run";
      cursor = cn.entry_end;
      CheckNode(tree, child, boxes, slot_seen);
      min_pos = std::min(min_pos, cn.min_pos);
      for (int k = 0; k < w; ++k) {
        mbr_lo[k] = std::min(mbr_lo[k], tree.node_lower(child)[k]);
        mbr_hi[k] = std::max(mbr_hi[k], tree.node_upper(child)[k]);
      }
    }
    ASSERT_EQ(cursor, node.entry_end);
  }
  EXPECT_EQ(node.min_pos, min_pos);
  for (int k = 0; k < w; ++k) {
    EXPECT_EQ(tree.node_lower(v)[k], mbr_lo[k]) << "node " << v << " dim " << k;
    EXPECT_EQ(tree.node_upper(v)[k], mbr_hi[k]) << "node " << v << " dim " << k;
  }
}

TEST(PackedBoxTreeTest, StructuralInvariants) {
  Rng rng(20140605);
  for (const int64_t n : {int64_t{0}, int64_t{1}, int64_t{5}, int64_t{16},
                          int64_t{17}, int64_t{100}, int64_t{1000}}) {
    for (const int width : {1, 2, 3, 5}) {
      const BoxSet boxes = RandomBoxes(rng, n, width, /*points=*/false);
      const PackedBoxTree tree = BuildTree(boxes);
      ASSERT_EQ(tree.num_entries(), n);
      ASSERT_EQ(tree.width(), width);
      if (n == 0) {
        EXPECT_TRUE(tree.empty());
        EXPECT_TRUE(tree.nodes().empty());
        continue;
      }
      // Root is node 0 and covers every slot; the recursive walk verifies
      // MBRs, min_pos, leaf capacity/order, fanout, and contiguity.
      const PackedBoxTree::Node& root = tree.nodes()[0];
      ASSERT_EQ(root.entry_begin, 0);
      ASSERT_EQ(root.entry_end, n);
      std::vector<int> slot_seen(static_cast<size_t>(n), 0);
      CheckNode(tree, 0, boxes, slot_seen);
      // Packed slots hold each original entry exactly once.
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(slot_seen[static_cast<size_t>(i)], 1) << "entry " << i;
      }
    }
  }
}

TEST(PackedBoxTreeTest, DeterministicRebuild) {
  Rng rng(7);
  const BoxSet boxes = RandomBoxes(rng, 333, 3, /*points=*/false);
  const PackedBoxTree a = BuildTree(boxes);
  const PackedBoxTree b = BuildTree(boxes);
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  for (size_t v = 0; v < a.nodes().size(); ++v) {
    EXPECT_EQ(a.nodes()[v].entry_begin, b.nodes()[v].entry_begin);
    EXPECT_EQ(a.nodes()[v].entry_end, b.nodes()[v].entry_end);
    EXPECT_EQ(a.nodes()[v].child_begin, b.nodes()[v].child_begin);
    EXPECT_EQ(a.nodes()[v].child_count, b.nodes()[v].child_count);
    EXPECT_EQ(a.nodes()[v].min_pos, b.nodes()[v].min_pos);
  }
  EXPECT_EQ(a.child_ids(), b.child_ids());
  for (int64_t s = 0; s < a.num_entries(); ++s) {
    EXPECT_EQ(a.slot_entry_id(s), b.slot_entry_id(s));
  }
}

uint8_t ReferenceClassify(const std::vector<double>& lo,
                          const std::vector<double>& hi,
                          const std::vector<IndexRange>& ranges) {
  bool contained = true;
  for (const IndexRange& range : ranges) {
    if (range.lo > hi[static_cast<size_t>(range.attr)] ||
        range.hi < lo[static_cast<size_t>(range.attr)]) {
      return kIndexDisjoint;
    }
    if (!(range.lo <= lo[static_cast<size_t>(range.attr)] &&
          hi[static_cast<size_t>(range.attr)] <= range.hi)) {
      contained = false;
    }
  }
  return contained ? kIndexContained : kIndexOverlap;
}

TEST(PackedBoxTreeTest, ClassifyRangesMatchesBruteForce) {
  Rng rng(99);
  for (const int64_t n : {int64_t{1}, int64_t{17}, int64_t{100},
                          int64_t{1000}}) {
    for (const int width : {1, 2, 3, 5}) {
      const BoxSet boxes = RandomBoxes(rng, n, width, /*points=*/false);
      const PackedBoxTree tree = BuildTree(boxes);
      for (int trial = 0; trial < 20; ++trial) {
        // Between zero and `width` constrained attributes; narrow and wide
        // intervals so all three classes occur.
        std::vector<IndexRange> ranges;
        for (int k = 0; k < width; ++k) {
          if (trial > 0 && rng.Bernoulli(0.4)) continue;
          IndexRange range;
          range.attr = k;
          const double a = static_cast<double>(rng.UniformInt(-2, 22));
          const double b = static_cast<double>(rng.UniformInt(-2, 22));
          range.lo = std::min(a, b);
          range.hi = std::max(a, b);
          ranges.push_back(range);
        }
        std::vector<uint8_t> out(static_cast<size_t>(n), 0xEE);
        CoarseIndexStats stats;
        tree.ClassifyRanges(ranges, out.data(), &stats);
        // Every entry is accounted for exactly once: tested at a leaf or
        // classified wholesale through a node MBR.
        EXPECT_EQ(stats.entries_tested + stats.entries_bulk, n);
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(out[static_cast<size_t>(i)],
                    ReferenceClassify(boxes.lo[static_cast<size_t>(i)],
                                      boxes.hi[static_cast<size_t>(i)],
                                      ranges))
              << "entry " << i << " n=" << n << " width=" << width;
        }
      }
    }
  }
}

// Reference for FirstDominatorPos: the serial ascending-id scan.
int64_t ReferenceFirstDominator(const BoxSet& boxes,
                                const std::vector<double>& victim) {
  const int w = boxes.width;
  for (int64_t i = 0; i < static_cast<int64_t>(boxes.lo.size()); ++i) {
    bool all = true;
    bool strict = false;
    for (int k = 0; k < w; ++k) {
      const double v = boxes.lo[static_cast<size_t>(i)][k];
      if (v > victim[static_cast<size_t>(k)]) {
        all = false;
        break;
      }
      if (v < victim[static_cast<size_t>(k)]) strict = true;
    }
    if (all && strict) return i;
  }
  return -1;
}

TEST(PackedBoxTreeTest, FirstDominatorPosMatchesLinearScan) {
  Rng rng(4242);
  for (const int64_t n : {int64_t{1}, int64_t{16}, int64_t{100},
                          int64_t{1000}}) {
    for (const int width : {1, 2, 4}) {
      const BoxSet boxes = RandomBoxes(rng, n, width, /*points=*/true);
      PackedBoxTree tree;
      std::vector<double> flat;
      for (const auto& row : boxes.lo) {
        flat.insert(flat.end(), row.begin(), row.end());
      }
      tree.BuildPoints(width, n, flat.data());
      for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> victim(width);
        for (double& v : victim) {
          v = static_cast<double>(rng.UniformInt(0, 20));
        }
        CoarseIndexStats stats;
        EXPECT_EQ(tree.FirstDominatorPos(victim.data(), &stats),
                  ReferenceFirstDominator(boxes, victim))
            << "n=" << n << " width=" << width << " trial=" << trial;
      }
    }
  }
}

// The tentpole differential: at every (dims, selectivity, seed) cell the
// indexed region build and indexed coarse prune must reproduce the scan
// path's region sets, lineages, guarantees, discard decisions, and
// coarse_ops exactly.
TEST(CoarseIndexDifferentialTest, IndexedCoarsePhaseMatchesScan) {
  for (const int dims : {2, 3, 4}) {
    for (const double selectivity : {0.02, 0.1}) {
      for (const uint64_t seed : {11ull, 77ull}) {
        auto [r, t] =
            MakeTables(Distribution::kIndependent, 400, dims, selectivity,
                       seed);
        const int num_queries = dims == 2 ? 1 : 4;
        const Workload workload =
            MakeSubspaceWorkload(dims, 0, num_queries,
                                 PriorityPolicy::kUniform, seed)
                .value();
        const PartitionedTable part_r =
            PartitionTableQuadTreeTarget(r, 32).value();
        const PartitionedTable part_t =
            PartitionTableQuadTreeTarget(t, 32).value();

        // Region build: scan vs selection-class index.
        const RegionCollection scan_rc =
            BuildRegions(part_r, part_t, workload).value();
        CoarseIndexStats build_stats;
        SelectionClassIndex sel_index =
            BuildSelectionClassIndex(part_r, part_t, workload, &build_stats);
        RegionBuildOptions build_options;
        build_options.selection_index = &sel_index;
        build_options.index_stats = &build_stats;
        const RegionCollection indexed_rc =
            BuildRegions(part_r, part_t, workload, build_options).value();

        ASSERT_EQ(indexed_rc.regions.size(), scan_rc.regions.size());
        EXPECT_EQ(indexed_rc.coarse_ops, scan_rc.coarse_ops);
        EXPECT_EQ(indexed_rc.total_join_sizes, scan_rc.total_join_sizes);
        for (size_t i = 0; i < scan_rc.regions.size(); ++i) {
          const OutputRegion& a = indexed_rc.regions[i];
          const OutputRegion& b = scan_rc.regions[i];
          ASSERT_EQ(a.id, b.id);
          ASSERT_EQ(a.cell_r, b.cell_r);
          ASSERT_EQ(a.cell_t, b.cell_t);
          EXPECT_EQ(a.rql, b.rql) << "region " << i;
          EXPECT_EQ(a.guaranteed, b.guaranteed) << "region " << i;
          EXPECT_EQ(a.join_sizes, b.join_sizes) << "region " << i;
        }
        EXPECT_EQ(build_stats.entries_tested + build_stats.entries_bulk,
                  static_cast<int64_t>(num_queries) *
                      (part_r.num_cells() + part_t.num_cells()));

        // Coarse prune: scan vs best-first branch-and-bound.
        RegionCollection scan_pruned = scan_rc;
        RegionCollection indexed_pruned = indexed_rc;
        const CoarsePruneStats scan_stats =
            CoarseSkylinePrune(scan_pruned, workload);
        CoarsePruneOptions prune_options;
        prune_options.use_index = true;
        CoarseIndexStats prune_index_stats;
        prune_options.index_stats = &prune_index_stats;
        const CoarsePruneStats indexed_stats =
            CoarseSkylinePrune(indexed_pruned, workload, prune_options);
        EXPECT_EQ(indexed_stats.coarse_ops, scan_stats.coarse_ops);
        EXPECT_EQ(indexed_stats.pruned_pairs, scan_stats.pruned_pairs);
        EXPECT_EQ(indexed_stats.pruned_regions, scan_stats.pruned_regions);
        for (size_t i = 0; i < scan_pruned.regions.size(); ++i) {
          EXPECT_EQ(indexed_pruned.regions[i].rql,
                    scan_pruned.regions[i].rql)
              << "region " << i;
          EXPECT_EQ(indexed_pruned.regions[i].guaranteed,
                    scan_pruned.regions[i].guaranteed)
              << "region " << i;
        }
      }
    }
  }
}

// Large-N spot check under the full-report differential oracle: the engine
// report (every counter, virtual time, per-query outcome) must hash equal
// across coarse_index {off,on} x threads {1,8}.
TEST(CoarseIndexDifferentialTest, LargeNReportHashInvariant) {
  bench::BenchConfig config;
  config.rows = 500000;
  config.num_attrs = 3;
  config.num_queries = 4;
  config.seed = 2014;
  config.selectivity = 1.0 / static_cast<double>(config.rows);
  auto [r, t] = bench::MakeBenchTables(config);
  const Workload workload =
      MakeSubspaceWorkload(config.num_attrs, 0, config.num_queries,
                           PriorityPolicy::kUniform, config.seed)
          .value();
  const std::vector<Contract> contracts(workload.num_queries(),
                                        MakeLogDecayContract());
  uint64_t reference = 0;
  bool have_reference = false;
  for (const int threads : {1, 8}) {
    for (const bool coarse_index : {false, true}) {
      ExecOptions options;
      options.capture_results = false;
      options.num_threads = threads;
      options.coarse_index = coarse_index;
      const ExecutionReport report =
          bench::RunEngine("CAQE", r, t, workload, contracts, options);
      const uint64_t hash = bench::ReportHash(report);
      if (!have_reference) {
        reference = hash;
        have_reference = true;
      }
      EXPECT_EQ(hash, reference)
          << "threads=" << threads << " coarse_index=" << coarse_index;
    }
  }
}

}  // namespace
}  // namespace caqe
