// Unit tests for query/workload definitions and the workload generators.
#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "query/query.h"
#include "query/workload_generator.h"

namespace caqe {
namespace {

Table TinyTable(int attrs, int keys) {
  Table t("T", attrs, keys);
  std::vector<double> a(attrs, 1.0);
  std::vector<int32_t> k(keys, 0);
  t.AppendRow(a, k);
  return t;
}

TEST(MappingFunctionTest, AppliesWeightedSum) {
  const MappingFunction f{0, 1, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(f.Apply(10.0, 100.0), 2.0 * 10.0 + 3.0 * 100.0);
}

TEST(PriorityClassTest, PaperBands) {
  EXPECT_EQ(ClassifyPriority(1.0), PriorityClass::kHigh);
  EXPECT_EQ(ClassifyPriority(0.7), PriorityClass::kHigh);
  EXPECT_EQ(ClassifyPriority(0.69), PriorityClass::kMedium);
  EXPECT_EQ(ClassifyPriority(0.4), PriorityClass::kMedium);
  EXPECT_EQ(ClassifyPriority(0.39), PriorityClass::kLow);
  EXPECT_EQ(ClassifyPriority(0.0), PriorityClass::kLow);
}

TEST(WorkloadTest, ProjectComputesAllDims) {
  Table r("R", 2, 1);
  r.AppendRow({1.0, 2.0}, {0});
  Table t("T", 2, 1);
  t.AppendRow({10.0, 20.0}, {0});
  Workload wl;
  wl.AddOutputDim({0, 0, 1.0, 1.0});
  wl.AddOutputDim({1, 1, 0.5, 2.0});
  std::vector<double> out;
  wl.Project(r, 0, t, 0, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 11.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5 * 2.0 + 2.0 * 20.0);
}

TEST(WorkloadTest, ValidationCatchesErrors) {
  const Table r = TinyTable(2, 1);
  const Table t = TinyTable(2, 1);

  Workload empty;
  EXPECT_FALSE(empty.Validate(r, t).ok());

  Workload bad_attr;
  bad_attr.AddOutputDim({5, 0, 1.0, 1.0});
  bad_attr.AddQuery({"Q", 0, {0}, 1.0});
  EXPECT_FALSE(bad_attr.Validate(r, t).ok());

  Workload bad_key;
  bad_key.AddOutputDim({0, 0, 1.0, 1.0});
  bad_key.AddQuery({"Q", 3, {0}, 1.0});
  EXPECT_FALSE(bad_key.Validate(r, t).ok());

  Workload bad_weight;
  bad_weight.AddOutputDim({0, 0, -1.0, 1.0});
  bad_weight.AddQuery({"Q", 0, {0}, 1.0});
  EXPECT_FALSE(bad_weight.Validate(r, t).ok());

  Workload dup_pref;
  dup_pref.AddOutputDim({0, 0, 1.0, 1.0});
  dup_pref.AddOutputDim({1, 1, 1.0, 1.0});
  dup_pref.AddQuery({"Q", 0, {0, 0}, 1.0});
  EXPECT_FALSE(dup_pref.Validate(r, t).ok());

  Workload bad_priority;
  bad_priority.AddOutputDim({0, 0, 1.0, 1.0});
  bad_priority.AddQuery({"Q", 0, {0}, 2.0});
  EXPECT_FALSE(bad_priority.Validate(r, t).ok());

  Workload good;
  good.AddOutputDim({0, 0, 1.0, 1.0});
  good.AddQuery({"Q", 0, {0}, 0.5});
  EXPECT_TRUE(good.Validate(r, t).ok());
}

TEST(WorkloadTest, DistinctJoinKeysAndPriorityOrder) {
  Workload wl;
  wl.AddOutputDim({0, 0, 1.0, 1.0});
  wl.AddQuery({"A", 1, {0}, 0.2});
  wl.AddQuery({"B", 0, {0}, 0.9});
  wl.AddQuery({"C", 1, {0}, 0.5});
  EXPECT_EQ(wl.DistinctJoinKeys(), (std::vector<int>{0, 1}));
  EXPECT_EQ(wl.QueriesByPriority(), (std::vector<int>{1, 2, 0}));
}

TEST(SubspaceWorkloadTest, ElevenQueriesForFourDims) {
  // All 6+4+1 multi-dimensional subspaces of a 4-d space — the paper's
  // |S_Q| = 11 workload.
  const Workload wl =
      MakeSubspaceWorkload(4, 0, 11, PriorityPolicy::kUniform).value();
  EXPECT_EQ(wl.num_queries(), 11);
  EXPECT_EQ(wl.num_output_dims(), 4);
  std::set<std::vector<int>> prefs;
  for (const SjQuery& q : wl.queries()) {
    EXPECT_GE(q.preference.size(), 2u);
    EXPECT_TRUE(prefs.insert(q.preference).second) << "duplicate preference";
  }
  // Requesting a 12th query must fail (no more subspaces).
  EXPECT_FALSE(MakeSubspaceWorkload(4, 0, 12, PriorityPolicy::kUniform).ok());
}

TEST(SubspaceWorkloadTest, OrderedBySizeThenLex) {
  const Workload wl =
      MakeSubspaceWorkload(3, 0, 4, PriorityPolicy::kUniform).value();
  EXPECT_EQ(wl.query(0).preference, (std::vector<int>{0, 1}));
  EXPECT_EQ(wl.query(1).preference, (std::vector<int>{0, 2}));
  EXPECT_EQ(wl.query(2).preference, (std::vector<int>{1, 2}));
  EXPECT_EQ(wl.query(3).preference, (std::vector<int>{0, 1, 2}));
}

TEST(SubspaceWorkloadTest, DimIncreasingPriorityPolicy) {
  const Workload wl =
      MakeSubspaceWorkload(4, 0, 11, PriorityPolicy::kDimIncreasing).value();
  // Queries with more dimensions must have higher priority.
  for (const SjQuery& a : wl.queries()) {
    for (const SjQuery& b : wl.queries()) {
      if (a.preference.size() > b.preference.size()) {
        EXPECT_GT(a.priority, b.priority);
      }
    }
  }
}

TEST(SubspaceWorkloadTest, DimDecreasingPriorityPolicy) {
  const Workload wl =
      MakeSubspaceWorkload(4, 0, 11, PriorityPolicy::kDimDecreasing).value();
  for (const SjQuery& a : wl.queries()) {
    for (const SjQuery& b : wl.queries()) {
      if (a.preference.size() < b.preference.size()) {
        EXPECT_GT(a.priority, b.priority);
      }
    }
  }
}

TEST(SubspaceWorkloadTest, PrioritiesInUnitRange) {
  for (PriorityPolicy policy :
       {PriorityPolicy::kDimIncreasing, PriorityPolicy::kDimDecreasing,
        PriorityPolicy::kUniform, PriorityPolicy::kRandom}) {
    const Workload wl = MakeSubspaceWorkload(4, 0, 11, policy).value();
    for (const SjQuery& q : wl.queries()) {
      EXPECT_GE(q.priority, 0.0);
      EXPECT_LE(q.priority, 1.0);
    }
  }
}

TEST(WorkloadTest, SelectionValidationAndSemantics) {
  const Table r = TinyTable(2, 1);
  const Table t = TinyTable(2, 1);

  Workload bad_attr;
  bad_attr.AddOutputDim({0, 0, 1.0, 1.0});
  bad_attr.AddQuery({"Q", 0, {0}, 1.0, {{true, 9, 0.0, 1.0}}});
  EXPECT_FALSE(bad_attr.Validate(r, t).ok());

  Workload bad_range;
  bad_range.AddOutputDim({0, 0, 1.0, 1.0});
  bad_range.AddQuery({"Q", 0, {0}, 1.0, {{true, 0, 5.0, 1.0}}});
  EXPECT_FALSE(bad_range.Validate(r, t).ok());

  Workload good;
  good.AddOutputDim({0, 0, 1.0, 1.0});
  good.AddQuery({"Q", 0, {0}, 1.0,
                 {{true, 0, 0.5, 2.0}, {false, 1, 0.0, 10.0}}});
  EXPECT_TRUE(good.Validate(r, t).ok());
  // TinyTable rows are all-1.0: inside both ranges.
  EXPECT_TRUE(good.SelectionsPass(0, r, 0, t, 0));

  Workload excluding;
  excluding.AddOutputDim({0, 0, 1.0, 1.0});
  excluding.AddQuery({"Q", 0, {0}, 1.0, {{false, 0, 2.0, 3.0}}});
  EXPECT_FALSE(excluding.SelectionsPass(0, r, 0, t, 0));
}

TEST(WorkloadTest, RejectsMoreThanSixtyFourQueries) {
  const Table r = TinyTable(2, 1);
  const Table t = TinyTable(2, 1);
  Workload wl;
  wl.AddOutputDim({0, 0, 1.0, 1.0});
  for (int q = 0; q < 65; ++q) {
    wl.AddQuery({"Q" + std::to_string(q), 0, {0}, 0.5});
  }
  EXPECT_FALSE(wl.Validate(r, t).ok());
}

TEST(RandomWorkloadTest, RespectsBoundsAndSeed) {
  const Workload a =
      MakeRandomWorkload(5, 2, 8, PriorityPolicy::kRandom, 42).value();
  const Workload b =
      MakeRandomWorkload(5, 2, 8, PriorityPolicy::kRandom, 42).value();
  EXPECT_EQ(a.num_queries(), 8);
  for (int q = 0; q < 8; ++q) {
    EXPECT_EQ(a.query(q).preference, b.query(q).preference);
    EXPECT_EQ(a.query(q).join_key, b.query(q).join_key);
    EXPECT_GE(a.query(q).join_key, 0);
    EXPECT_LT(a.query(q).join_key, 2);
    EXPECT_GE(a.query(q).preference.size(), 2u);
    EXPECT_LE(a.query(q).preference.size(), 5u);
  }
  EXPECT_FALSE(MakeRandomWorkload(1, 1, 4, PriorityPolicy::kRandom, 1).ok());
  EXPECT_FALSE(MakeRandomWorkload(4, 0, 4, PriorityPolicy::kRandom, 1).ok());
}

}  // namespace
}  // namespace caqe
