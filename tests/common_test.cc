// Unit tests for the common substrate: Status/Result, QuerySet, Rng,
// VirtualClock, ThreadPool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/query_set.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/virtual_clock.h"

namespace caqe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kNotImplemented}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

Status FailsThenPropagates() {
  CAQE_RETURN_NOT_OK(Status::NotFound("inner"));
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  const Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("too big");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(QuerySetTest, BasicMembership) {
  QuerySet s;
  EXPECT_TRUE(s.empty());
  s.Add(3);
  s.Add(63);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(63));
  EXPECT_FALSE(s.Contains(0));
  EXPECT_EQ(s.size(), 2);
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.size(), 1);
}

TEST(QuerySetTest, AllOfCoversPrefix) {
  const QuerySet s = QuerySet::AllOf(5);
  EXPECT_EQ(s.size(), 5);
  for (int q = 0; q < 5; ++q) EXPECT_TRUE(s.Contains(q));
  EXPECT_FALSE(s.Contains(5));
  EXPECT_EQ(QuerySet::AllOf(64).size(), 64);
  EXPECT_TRUE(QuerySet::AllOf(0).empty());
}

TEST(QuerySetTest, SetAlgebra) {
  const QuerySet a = QuerySet::Of(1).Union(QuerySet::Of(4));
  const QuerySet b = QuerySet::Of(4).Union(QuerySet::Of(9));
  EXPECT_EQ(a.Intersect(b), QuerySet::Of(4));
  EXPECT_EQ(a.Minus(b), QuerySet::Of(1));
  EXPECT_TRUE(QuerySet::Of(4).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(QuerySet::Of(2).Intersects(a));
}

TEST(QuerySetTest, ForEachAscending) {
  QuerySet s;
  s.Add(10);
  s.Add(2);
  s.Add(33);
  std::vector<int> seen;
  s.ForEach([&](int q) { seen.push_back(q); });
  EXPECT_EQ(seen, (std::vector<int>{2, 10, 33}));
  EXPECT_EQ(s.ToString(), "{2,10,33}");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
    const int64_t n = rng.UniformInt(-3, 3);
    EXPECT_GE(n, -3);
    EXPECT_LE(n, 3);
  }
}

TEST(VirtualClockTest, AdvancesByCostModel) {
  CostModel cost;
  cost.join_probe_seconds = 1.0;
  cost.dominance_cmp_seconds = 0.5;
  VirtualClock clock(cost);
  EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
  clock.ChargeJoinProbes(3);
  EXPECT_DOUBLE_EQ(clock.Now(), 3.0);
  clock.ChargeDominanceCmps(4);
  EXPECT_DOUBLE_EQ(clock.Now(), 5.0);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
}

TEST(VirtualClockTest, MonotoneUnderAllCharges) {
  VirtualClock clock;
  double last = clock.Now();
  clock.ChargeJoinProbes(10);
  EXPECT_GE(clock.Now(), last);
  last = clock.Now();
  clock.ChargeJoinResults(10);
  EXPECT_GE(clock.Now(), last);
  last = clock.Now();
  clock.ChargeEmits(10);
  EXPECT_GE(clock.Now(), last);
  last = clock.Now();
  clock.ChargeScheduleSteps(1);
  EXPECT_GE(clock.Now(), last);
  last = clock.Now();
  clock.ChargeCoarseOps(100);
  EXPECT_GE(clock.Now(), last);
}

// ---- Thread pool ----

TEST(ThreadPoolTest, ResolveNumThreads) {
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(5), 5);
  // 0 and negatives resolve to the hardware parallelism, at least 1.
  EXPECT_GE(ResolveNumThreads(0), 1);
  EXPECT_GE(ResolveNumThreads(-3), 1);
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker that threw keeps serving later tasks.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ChunkRangePartitionsExactly) {
  for (int64_t n : {0, 1, 7, 64, 1000}) {
    for (int chunks : {1, 2, 3, 8}) {
      int64_t expected_begin = 0;
      int64_t covered = 0;
      for (int c = 0; c < chunks; ++c) {
        const auto [begin, end] = ChunkRange(n, chunks, c);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(begin, end);
        covered += end - begin;
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ThreadPoolTest, NumChunksBounds) {
  // No pool: everything stays a single inline chunk.
  EXPECT_EQ(NumChunks(nullptr, 1000, 1), 1);
  ThreadPool pool(3);
  // Bounded by workers + caller...
  EXPECT_EQ(NumChunks(&pool, 1000000, 1), 4);
  // ...by the minimum chunk size...
  EXPECT_EQ(NumChunks(&pool, 100, 50), 2);
  // ...and by the item count.
  EXPECT_EQ(NumChunks(&pool, 2, 1), 2);
  EXPECT_EQ(NumChunks(&pool, 0, 1), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, kN, /*min_chunk=*/16,
              [&](int64_t i) { hits[i] += 1; });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
  // A null pool runs inline and still covers everything.
  std::vector<int> serial_hits(kN, 0);
  ParallelFor(nullptr, kN, 16, [&](int64_t i) { serial_hits[i] += 1; });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(serial_hits[i], 1);
}

TEST(ThreadPoolTest, RunChunksRethrowsLowestChunkException) {
  ThreadPool pool(2);
  try {
    RunChunks(&pool, 4, [&](int c) {
      if (c == 1) throw std::runtime_error("chunk 1");
      if (c == 3) throw std::logic_error("chunk 3");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 1");
  }
}

}  // namespace
}  // namespace caqe
