// Serving layer tests (src/serve/): contract-aware admission, dynamic
// workload grafting, mid-run retirement, streaming emission, and the
// determinism and cancellation-equivalence guarantees.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "contracts/utility.h"
#include "data/generator.h"
#include "exec/emission.h"
#include "serve/admission.h"
#include "serve/server.h"
#include "serve/serving.h"
#include "serve/trace.h"
#include "test_util.h"

namespace caqe {
namespace {

/// (R, T) with `num_keys` join-key columns so the server bootstraps one
/// workload slot per key.
std::pair<Table, Table> MakeServeTables(int num_keys, int64_t rows = 200,
                                        uint64_t seed = 11) {
  GeneratorConfig cfg;
  cfg.num_rows = rows;
  cfg.num_attrs = 3;
  cfg.join_selectivities.assign(num_keys, 0.05);
  cfg.distribution = Distribution::kIndependent;
  cfg.seed = seed;
  Table r = GenerateTable("R", cfg).value();
  cfg.seed = seed + 1;
  Table t = GenerateTable("T", cfg).value();
  return {std::move(r), std::move(t)};
}

std::vector<MappingFunction> ThreeDims() {
  return {MappingFunction{0, 0}, MappingFunction{1, 1}, MappingFunction{2, 2}};
}

ServeOptions SmallServeOptions() {
  ServeOptions options;
  options.target_regions = 64;
  return options;
}

TEST(CaqeServerTest, CreateValidatesInputs) {
  auto [r, t] = MakeServeTables(1);
  EXPECT_EQ(CaqeServer::Create(r, t, {}, {0}, SmallServeOptions())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CaqeServer::Create(r, t, ThreeDims(), {}, SmallServeOptions())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// A single admitted query must stream exactly its oracle skyline: the graft
// path (bootstrap regions + re-derived lineage) loses and invents nothing
// relative to a batch run over the same data.
TEST(CaqeServerTest, SingleQueryStreamsExactSkyline) {
  auto [r, t] = MakeServeTables(1, 300);
  Workload reference;
  for (const MappingFunction& f : ThreeDims()) reference.AddOutputDim(f);
  const SjQuery query{"Q0", 0, {0, 1, 2}, 1.0, {}};
  reference.AddQuery(query);

  auto server =
      CaqeServer::Create(r, t, ThreeDims(), {0}, SmallServeOptions()).value();
  std::vector<int64_t> streamed;
  double last_time = 0.0;
  const int id = server->Submit(
      query, MakeTimeStepContract(10.0), 0.0, 0.0,
      [&](int request_id, int64_t tuple_id, double vtime, double utility) {
        EXPECT_EQ(request_id, 0);
        EXPECT_GE(vtime, last_time);
        EXPECT_GE(utility, 0.0);
        last_time = vtime;
        streamed.push_back(tuple_id);
      });
  EXPECT_EQ(id, 0);
  const ServingReport report = server->Run().value();

  ASSERT_EQ(report.requests.size(), 1u);
  const RequestReport& request = report.requests[0];
  EXPECT_EQ(request.status, RequestStatus::kCompleted);
  EXPECT_EQ(request.results, static_cast<int64_t>(streamed.size()));
  EXPECT_GE(request.time_to_first_result, 0.0);
  EXPECT_GT(request.pscore, 0.0);
  EXPECT_EQ(report.completed, 1);
  EXPECT_EQ(report.admission_rate, 1.0);

  std::vector<std::vector<double>> rows;
  for (int64_t tuple : streamed) {
    const double* values = server->store().row(tuple);
    rows.push_back(::caqe::testing::ProjectReported(
        std::vector<double>(values, values + 3), reference, 0));
  }
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, ::caqe::testing::OracleSkyline(r, t, reference, 0));
}

// The full trace replay is a pure function of the trace: byte-identical
// serving reports across thread counts and across reruns.
TEST(CaqeServerTest, ReportIsDeterministicAcrossThreads) {
  TraceConfig config;
  config.num_requests = 10;
  config.arrival_rate = 30.0;
  config.reference_seconds = 0.05;
  config.deadline_fraction = 0.3;
  config.cancel_fraction = 0.2;
  const auto run = [&](int threads) {
    auto [r, t] = MakeServeTables(2, 300);
    ServeOptions options = SmallServeOptions();
    options.num_threads = threads;
    auto server = CaqeServer::Create(std::move(r), std::move(t), ThreeDims(),
                                     {0, 1}, options)
                      .value();
    const std::vector<TraceRequest> trace =
        MakeSyntheticTrace(config, {0, 1}, 3);
    SubmitTrace(*server, trace);
    const ServingReport report = server->Run().value();
    EXPECT_GE(report.admitted, 1);
    return ServingReportText(report);
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial, run(8));
  EXPECT_EQ(serial, run(1));
}

TEST(CaqeServerTest, RejectsUnknownJoinPredicate) {
  auto [r, t] = MakeServeTables(1);
  auto server =
      CaqeServer::Create(std::move(r), std::move(t), ThreeDims(), {0},
                         SmallServeOptions())
          .value();
  server->Submit(SjQuery{"bad", 2, {0, 1}, 1.0, {}},
                 MakeTimeStepContract(10.0), 0.0);
  const ServingReport report = server->Run().value();
  EXPECT_EQ(report.requests[0].status, RequestStatus::kRejected);
  EXPECT_EQ(report.requests[0].reason, "no-predicate");
  EXPECT_EQ(report.rejected, 1);
}

TEST(CaqeServerTest, RejectsHopelessContract) {
  auto [r, t] = MakeServeTables(1);
  ServeOptions options = SmallServeOptions();
  auto server = CaqeServer::Create(std::move(r), std::move(t), ThreeDims(),
                                   {0}, options)
                    .value();
  // A step contract whose deadline is below any feasible first-result time
  // previews to zero utility everywhere in the service window.
  server->Submit(SjQuery{"hopeless", 0, {0, 1}, 1.0, {}},
                 MakeTimeStepContract(1e-12), 0.0);
  const ServingReport report = server->Run().value();
  EXPECT_EQ(report.requests[0].status, RequestStatus::kRejected);
  EXPECT_EQ(report.requests[0].reason, "low-utility");
}

// With one active-query slot, a simultaneous second arrival defers and is
// admitted once the first completes; both finish.
TEST(CaqeServerTest, DefersOnCapacityThenAdmits) {
  auto [r, t] = MakeServeTables(1, 300);
  ServeOptions options = SmallServeOptions();
  options.max_active_queries = 1;
  auto server = CaqeServer::Create(std::move(r), std::move(t), ThreeDims(),
                                   {0}, options)
                    .value();
  server->Submit(SjQuery{"first", 0, {0, 1}, 1.0, {}},
                 MakeLogDecayContract(0.001), 0.0);
  server->Submit(SjQuery{"second", 0, {1, 2}, 1.0, {}},
                 MakeLogDecayContract(0.001), 0.0);
  const ServingReport report = server->Run().value();
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.requests[0].defers, 0);
  EXPECT_GE(report.requests[1].defers, 1);
  // The deferred query only started after the first finished.
  EXPECT_GE(report.requests[1].decision_time,
            report.requests[0].finish_time);
}

// Slots recycle: many more requests than concurrent capacity all complete.
TEST(CaqeServerTest, SlotsRecycleAcrossManyRequests) {
  auto [r, t] = MakeServeTables(1, 200);
  ServeOptions options = SmallServeOptions();
  options.max_active_queries = 2;
  auto server = CaqeServer::Create(std::move(r), std::move(t), ThreeDims(),
                                   {0}, options)
                    .value();
  for (int i = 0; i < 6; ++i) {
    // Step contracts keep full utility while queued, so deferred requests
    // stay admissible once capacity frees (a fast-decaying contract would
    // legitimately reject as low-utility by then).
    server->Submit(SjQuery{"W" + std::to_string(i), 0,
                           {i % 3, (i + 1) % 3}, 1.0, {}},
                   MakeTimeStepContract(10.0), 0.0);
  }
  const ServingReport report = server->Run().value();
  EXPECT_EQ(report.admitted, 6);
  EXPECT_EQ(report.completed, 6);
  for (const RequestReport& request : report.requests) {
    EXPECT_EQ(request.status, RequestStatus::kCompleted);
    EXPECT_GT(request.results, 0);
  }
}

// A deadlined query admitted under admit_all expires mid-run; the other
// query's stream and report stay valid.
TEST(CaqeServerTest, ExpiresMidRunWithoutDisturbingSurvivors) {
  auto [r, t] = MakeServeTables(1, 300);
  ServeOptions options = SmallServeOptions();
  options.admit_all = true;
  auto server = CaqeServer::Create(std::move(r), std::move(t), ThreeDims(),
                                   {0}, options)
                    .value();
  server->Submit(SjQuery{"slow", 0, {0, 1, 2}, 1.0, {}},
                 MakeLogDecayContract(0.001), 0.0);
  int64_t doomed_results = 0;
  double last_doomed_vtime = -1.0;
  server->Submit(SjQuery{"doomed", 0, {0, 1}, 1.0, {}},
                 MakeLogDecayContract(0.001), 0.0,
                 /*deadline_seconds=*/1e-4,
                 [&](int, int64_t, double vtime, double) {
                   ++doomed_results;
                   last_doomed_vtime = vtime;
                 });
  const ServingReport report = server->Run().value();
  EXPECT_EQ(report.requests[0].status, RequestStatus::kCompleted);
  EXPECT_GT(report.requests[0].results, 0);
  EXPECT_EQ(report.requests[1].status, RequestStatus::kExpired);
  EXPECT_EQ(report.requests[1].results, doomed_results);
  EXPECT_EQ(report.expired, 1);
  // Expiry is enforced at region boundaries (in-flight regions are never
  // restarted): nothing streams after the retirement time, and the query
  // is retired at the first boundary past its deadline.
  EXPECT_GE(report.requests[1].finish_time, 1e-4);
  EXPECT_LE(last_doomed_vtime, report.requests[1].finish_time);
}

// The cancellation-equivalence guarantee: a query grafted and cancelled
// before any of its regions is processed leaves every survivor's report
// line byte-identical to a run where it was never submitted.
TEST(CaqeServerTest, CancellationIsEquivalentToNeverAdmitted) {
  // Three join keys -> three bootstrap slots, so the cancelled query reuses
  // free slot 2 instead of growing the workload.
  const auto make_server = [] {
    auto [r, t] = MakeServeTables(3, 200);
    return CaqeServer::Create(std::move(r), std::move(t), ThreeDims(),
                              {0, 1, 2}, SmallServeOptions())
        .value();
  };
  const SjQuery s0{"S0", 0, {0, 1}, 1.0, {}};
  const SjQuery s1{"S1", 1, {1, 2}, 0.8, {}};
  const SjQuery doomed{"C", 2, {0, 2}, 0.5, {}};
  const Contract contract = MakeLogDecayContract(0.001);
  const double cancel_time = 0.0005;

  auto with_cancel = make_server();
  with_cancel->Submit(s0, contract, 0.0);
  with_cancel->Submit(s1, contract, 0.0);
  int64_t doomed_emissions = 0;
  const int doomed_id = with_cancel->Submit(
      doomed, contract, cancel_time, 0.0,
      [&](int, int64_t, double, double) { ++doomed_emissions; });
  ASSERT_TRUE(with_cancel->Cancel(doomed_id, cancel_time).ok());
  const ServingReport cancelled_run = with_cancel->Run().value();

  auto without = make_server();
  without->Submit(s0, contract, 0.0);
  without->Submit(s1, contract, 0.0);
  const ServingReport clean_run = without->Run().value();

  EXPECT_EQ(cancelled_run.requests[doomed_id].status,
            RequestStatus::kCancelled);
  EXPECT_EQ(cancelled_run.requests[doomed_id].results, 0);
  EXPECT_EQ(doomed_emissions, 0);
  for (int q = 0; q < 2; ++q) {
    EXPECT_EQ(RequestReportLine(cancelled_run.requests[q]),
              RequestReportLine(clean_run.requests[q]))
        << "survivor " << q;
  }
  EXPECT_EQ(cancelled_run.finish_vtime, clean_run.finish_vtime);
}

TEST(CaqeServerTest, CancelBeforeArrivalIsCleanRejectionOfWork) {
  auto [r, t] = MakeServeTables(1);
  auto server =
      CaqeServer::Create(std::move(r), std::move(t), ThreeDims(), {0},
                         SmallServeOptions())
          .value();
  const int id = server->Submit(SjQuery{"late", 0, {0, 1}, 1.0, {}},
                                MakeTimeStepContract(10.0), 1.0);
  ASSERT_TRUE(server->Cancel(id, 0.5).ok());
  const ServingReport report = server->Run().value();
  EXPECT_EQ(report.requests[0].status, RequestStatus::kCancelled);
  EXPECT_EQ(report.requests[0].results, 0);
  EXPECT_EQ(report.admitted, 0);
}

// Serving lifecycle events flow through the ExecEvent trace with
// monotonically nondecreasing virtual timestamps.
TEST(CaqeServerTest, TraceRecordsAdmissionAndRetirement) {
  auto [r, t] = MakeServeTables(1, 200);
  std::vector<ExecEvent> events;
  ServeOptions options = SmallServeOptions();
  options.trace = &events;
  auto server = CaqeServer::Create(std::move(r), std::move(t), ThreeDims(),
                                   {0}, options)
                    .value();
  server->Submit(SjQuery{"traced", 0, {0, 1}, 1.0, {}},
                 MakeLogDecayContract(0.001), 0.0);
  server->Run().value();
  int admitted = 0;
  int retired = 0;
  double last_time = 0.0;
  for (const ExecEvent& event : events) {
    EXPECT_GE(event.vtime, last_time);
    last_time = event.vtime;
    if (event.kind == ExecEvent::Kind::kQueryAdmitted) ++admitted;
    if (event.kind == ExecEvent::Kind::kQueryRetired) ++retired;
  }
  EXPECT_EQ(admitted, 1);
  EXPECT_EQ(retired, 1);
}

// ---- Emission-manager park/flush interplay with retirement ----

/// One pending region whose box can still dominate the store's candidates,
/// shared by two queries.
struct EmissionFixture {
  Workload workload;
  RegionCollection rc;
  PointSet store{2};
  std::vector<char> pending{1};

  EmissionFixture() {
    workload.AddOutputDim(MappingFunction{0, 0});
    workload.AddOutputDim(MappingFunction{1, 1});
    workload.AddQuery(SjQuery{"Q0", 0, {0, 1}, 1.0, {}});
    workload.AddQuery(SjQuery{"Q1", 0, {0, 1}, 1.0, {}});
    rc.predicate_slots = {0};
    rc.slot_of_query = {0, 0};
    rc.queries_of_slot = {QuerySet::AllOf(2)};
    OutputRegion blocker;
    blocker.id = 0;
    blocker.lower = {0.0, 0.0};
    blocker.upper = {10.0, 10.0};
    blocker.rql = QuerySet::AllOf(2);
    rc.regions.push_back(std::move(blocker));
    const double first[2] = {5.0, 5.0};
    const double second[2] = {6.0, 4.0};
    store.Append(first);
    store.Append(second);
  }
};

TEST(EmissionRetirementTest, RetiredQueryParkedTuplesAreDroppedNotEmitted) {
  EmissionFixture fx;
  EmissionManager manager(&fx.workload, &fx.rc, &fx.store, &fx.pending);
  std::vector<int64_t> now;
  manager.OnAccepted(0, 0, now);
  manager.OnAccepted(0, 1, now);
  manager.OnAccepted(1, 0, now);
  manager.OnAccepted(1, 1, now);
  EXPECT_TRUE(now.empty());  // All parked behind the pending blocker.
  EXPECT_EQ(manager.parked(0), 2);
  EXPECT_EQ(manager.parked(1), 2);

  std::vector<int64_t> flushed;
  manager.RetireQuery(0, &flushed);
  EXPECT_EQ(flushed, (std::vector<int64_t>{0, 1}));  // Ascending ids.
  EXPECT_EQ(manager.parked(0), 0);
  EXPECT_EQ(manager.parked(1), 2);

  // Resolving the blocker emits only the survivor's candidates.
  fx.pending[0] = 0;
  std::vector<std::pair<int, int64_t>> emitted;
  manager.OnRegionResolved(0, emitted);
  for (const auto& [q, id] : emitted) EXPECT_EQ(q, 1);
  EXPECT_EQ(emitted.size(), 2u);
  std::vector<std::pair<int, int64_t>> leftover;
  manager.DrainAll(leftover);
  EXPECT_TRUE(leftover.empty());
}

TEST(EmissionRetirementTest, SurvivorOrderingUnchangedByRetirement) {
  // The survivor's emission sequence must be identical whether or not the
  // other query existed and was retired.
  EmissionFixture with_retiree;
  EmissionManager noisy(&with_retiree.workload, &with_retiree.rc,
                        &with_retiree.store, &with_retiree.pending);
  std::vector<int64_t> now;
  noisy.OnAccepted(0, 1, now);
  noisy.OnAccepted(1, 0, now);
  noisy.OnAccepted(0, 0, now);
  noisy.OnAccepted(1, 1, now);
  noisy.RetireQuery(0, nullptr);
  with_retiree.pending[0] = 0;
  std::vector<std::pair<int, int64_t>> noisy_emitted;
  noisy.OnRegionResolved(0, noisy_emitted);

  EmissionFixture clean_fx;
  EmissionManager clean(&clean_fx.workload, &clean_fx.rc, &clean_fx.store,
                        &clean_fx.pending);
  clean.OnAccepted(1, 0, now);
  clean.OnAccepted(1, 1, now);
  clean_fx.pending[0] = 0;
  std::vector<std::pair<int, int64_t>> clean_emitted;
  clean.OnRegionResolved(0, clean_emitted);

  EXPECT_EQ(noisy_emitted, clean_emitted);
}

// Admission cost estimates are internally consistent.
TEST(AdmissionTest, EstimatesScaleWithBacklog) {
  auto [r, t] = MakeServeTables(1, 300);
  ServeOptions options = SmallServeOptions();
  options.max_active_queries = 1;
  auto server = CaqeServer::Create(std::move(r), std::move(t), ThreeDims(),
                                   {0}, options)
                    .value();
  server->Submit(SjQuery{"a", 0, {0, 1}, 1.0, {}},
                 MakeLogDecayContract(0.001), 0.0);
  server->Submit(SjQuery{"b", 0, {1, 2}, 1.0, {}},
                 MakeLogDecayContract(0.001), 0.0);
  const ServingReport report = server->Run().value();
  // Both carried positive utility expectations and a live lineage at
  // admission time.
  for (const RequestReport& request : report.requests) {
    EXPECT_GT(request.expected_utility, 0.0);
    EXPECT_GT(request.lineage_regions, 0);
  }
  EXPECT_GT(report.control_ops, 0);
}

}  // namespace
}  // namespace caqe
