// Concurrency stress suite for the sharded emission park set.
//
// Three EmissionManager replicas over one shared frozen world (workload,
// regions, tuple store, pending flags) are driven through identical
// randomized adversarial schedules — region flushes, evictions, lineage
// prunes, query retirements and re-grafts — and must agree byte for byte:
//
//   * `pooled`  flushes every region barrier through a real ThreadPool,
//   * `serial`  flushes with pool == nullptr (the reference q-order sweep),
//   * `legacy`  never calls FlushRegion at all: it replays the pre-sharding
//     serial sequence (OnRegionResolved over all queries, then per-query
//     OnAccepted) that FlushRegion documents itself as equivalent to.
//
// After every step the resolved/direct outputs, per-query park counts, and
// coarse-op totals of all three must match exactly; at the end a full
// drain must too. The pooled replica mutates its shards concurrently, so
// scripts/run_tsan.sh (which runs the whole ctest suite in build-tsan)
// doubles as the data-race gate for the lock-free parallel flush.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/query_set.h"
#include "common/thread_pool.h"
#include "exec/emission.h"
#include "query/query.h"
#include "region/region.h"
#include "region/region_builder.h"
#include "skyline/point_set.h"

namespace caqe {
namespace {

double UnitUniform(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * (1.0 / 9007199254740992.0);
}

/// The frozen shared inputs of one stress run. Everything the managers
/// read concurrently during a flush lives here and is mutated only between
/// barriers (pending flags, lineage prunes) — the same freeze discipline
/// the engine's emission phase guarantees.
struct StressWorld {
  Workload workload;
  RegionCollection rc;
  std::unique_ptr<PointSet> store;
  std::vector<char> pending;
  int num_queries = 0;
  int dims = 0;
};

StressWorld MakeWorld(uint64_t seed, int num_queries, int num_regions) {
  std::mt19937_64 rng(seed);
  StressWorld world;
  world.num_queries = num_queries;
  world.dims = 1 + static_cast<int>(rng() % 3);
  for (int d = 0; d < world.dims; ++d) {
    world.workload.AddOutputDim({0, 0, 1.0, 1.0});
  }
  for (int q = 0; q < num_queries; ++q) {
    std::vector<int> pref;
    for (int d = 0; d < world.dims; ++d) {
      if (rng() % 2 == 0) pref.push_back(d);
    }
    if (pref.empty()) pref.push_back(static_cast<int>(rng() % world.dims));
    // Two-step name build dodges a GCC 12 -Wrestrict false positive
    // (PR105651) in operator+(const char*, std::string&&).
    std::string name = "Q";
    name += std::to_string(q);
    world.workload.AddQuery({name, 0, pref, 1.0});
  }

  world.rc.predicate_slots = {0};
  world.rc.slot_of_query.assign(num_queries, 0);
  world.rc.queries_of_slot = {QuerySet::AllOf(num_queries)};
  world.rc.total_join_sizes = {2 * num_regions};
  for (int i = 0; i < num_regions; ++i) {
    OutputRegion region;
    region.id = i;
    for (int d = 0; d < world.dims; ++d) {
      const double lo = 10.0 * UnitUniform(rng);
      region.lower.push_back(lo);
      region.upper.push_back(lo + 0.5 + 2.5 * UnitUniform(rng));
    }
    for (int q = 0; q < num_queries; ++q) {
      if (rng() % 5 < 2) region.rql.Add(q);
    }
    if (region.rql.empty()) {
      region.rql.Add(static_cast<int>(rng() % num_queries));
    }
    region.join_sizes = {2};
    world.rc.regions.push_back(std::move(region));
  }
  world.store = std::make_unique<PointSet>(world.dims);
  world.pending.assign(num_regions, 1);
  return world;
}

/// A candidate tuple sampled for one region: mostly inside or near the
/// region's box (likely to park under some still-pending neighbor),
/// sometimes globally dominant (immediately safe everywhere).
int64_t SamplePoint(StressWorld& world, const OutputRegion& region,
                    std::mt19937_64& rng) {
  std::vector<double> values(world.dims);
  if (rng() % 4 == 0) {
    for (int d = 0; d < world.dims; ++d) values[d] = -100.0;
  } else {
    for (int d = 0; d < world.dims; ++d) {
      const double span = region.upper[d] - region.lower[d];
      values[d] = region.lower[d] + (UnitUniform(rng) * 3.0 - 1.0) * span;
    }
  }
  return world.store->Append(values);
}

/// Groups OnRegionResolved's (q, id) pairs into per-query sequences, the
/// shape FlushRegion reports. Pair order within a query is preserved.
std::vector<std::vector<int64_t>> GroupByQuery(
    const std::vector<std::pair<int, int64_t>>& pairs, int num_queries) {
  std::vector<std::vector<int64_t>> grouped(num_queries);
  for (const auto& [q, id] : pairs) grouped[q].push_back(id);
  return grouped;
}

void ExpectManagersAgree(EmissionManager& a, EmissionManager& b,
                         int num_queries, const std::string& where) {
  SCOPED_TRACE(where);
  EXPECT_EQ(a.coarse_ops(), b.coarse_ops());
  for (int q = 0; q < num_queries; ++q) {
    EXPECT_EQ(a.parked(q), b.parked(q)) << "query " << q;
  }
}

void RunStressSchedule(uint64_t seed, int num_queries, int num_regions,
                       int pool_threads) {
  StressWorld world = MakeWorld(seed, num_queries, num_regions);
  EmissionManager pooled(&world.workload, &world.rc, world.store.get(),
                         &world.pending);
  EmissionManager serial(&world.workload, &world.rc, world.store.get(),
                         &world.pending);
  EmissionManager legacy(&world.workload, &world.rc, world.store.get(),
                         &world.pending);
  ThreadPool pool(pool_threads);

  std::mt19937_64 rng(seed * 7919 + 13);
  std::vector<int> order(num_regions);
  for (int i = 0; i < num_regions; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);

  // (q, id) pairs accepted and not yet killed — the eviction pool.
  std::vector<std::pair<int, int64_t>> live;

  std::vector<std::vector<int64_t>> resolved_pooled, direct_pooled;
  std::vector<std::vector<int64_t>> resolved_serial, direct_serial;
  for (int step = 0; step < num_regions; ++step) {
    const int rid = order[step];
    const std::string where = "seed=" + std::to_string(seed) +
                              " step=" + std::to_string(step) +
                              " region=" + std::to_string(rid);

    // Adversarial interleavings between barriers: evictions, lineage
    // prunes, retirements, re-grafts — each applied identically to all
    // three replicas through the serial entry points.
    if (!live.empty() && rng() % 5 == 0) {
      const auto [q, id] = live[rng() % live.size()];
      pooled.OnEvicted(q, id);
      serial.OnEvicted(q, id);
      legacy.OnEvicted(q, id);
    }
    if (rng() % 7 == 0) {
      // Prune a query from a still-pending region's lineage (coarse
      // skyline discarding does this), then resolve the pair.
      const int target = static_cast<int>(rng() % num_regions);
      OutputRegion& region = world.rc.regions[target];
      if (world.pending[target] && region.rql.size() >= 2) {
        int victim = -1;
        region.rql.ForEach([&](int q) {
          if (victim < 0 || rng() % 2 == 0) victim = q;
        });
        region.rql.Remove(victim);
        std::vector<std::pair<int, int64_t>> out_pooled, out_serial,
            out_legacy;
        pooled.OnRegionResolvedForQuery(target, victim, out_pooled);
        serial.OnRegionResolvedForQuery(target, victim, out_serial);
        legacy.OnRegionResolvedForQuery(target, victim, out_legacy);
        EXPECT_EQ(out_pooled, out_serial) << where;
        EXPECT_EQ(out_pooled, out_legacy) << where;
      }
    }
    if (rng() % 10 == 0) {
      const int q = static_cast<int>(rng() % num_queries);
      std::vector<int64_t> f_pooled, f_serial, f_legacy;
      pooled.RetireQuery(q, &f_pooled);
      serial.RetireQuery(q, &f_serial);
      legacy.RetireQuery(q, &f_legacy);
      EXPECT_EQ(f_pooled, f_serial) << where;
      EXPECT_EQ(f_pooled, f_legacy) << where;
      if (rng() % 2 == 0) {
        // Serving re-graft: the query rejoins with a fresh shard.
        pooled.AddQuery(q);
        serial.AddQuery(q);
        legacy.AddQuery(q);
      }
    }

    // Tuples accepted into skylines during this region's processing, with
    // a sprinkle of same-phase evictions (the `dead` sets).
    std::vector<std::vector<int64_t>> accepted(num_queries);
    std::vector<std::vector<int64_t>> dead(num_queries);
    world.rc.regions[rid].rql.ForEach([&](int q) {
      const int count = static_cast<int>(rng() % 4);
      for (int i = 0; i < count; ++i) {
        const int64_t id = SamplePoint(world, world.rc.regions[rid], rng);
        accepted[q].push_back(id);
        if (rng() % 5 == 0) {
          dead[q].push_back(id);
        } else {
          live.emplace_back(q, id);
        }
      }
    });
    // FlushRegion's dead sets are sorted vectors (binary-search lookup).
    for (int q = 0; q < num_queries; ++q) {
      std::sort(dead[q].begin(), dead[q].end());
    }

    // The barrier: region rid is processed. All replicas observe the
    // pending flip; only `pooled` flushes concurrently.
    world.pending[rid] = 0;
    pooled.FlushRegion(rid, accepted, dead, &pool, resolved_pooled,
                       direct_pooled);
    serial.FlushRegion(rid, accepted, dead, /*pool=*/nullptr, resolved_serial,
                       direct_serial);
    std::vector<std::pair<int, int64_t>> legacy_pairs;
    legacy.OnRegionResolved(rid, legacy_pairs);
    const std::vector<std::vector<int64_t>> resolved_legacy =
        GroupByQuery(legacy_pairs, num_queries);
    std::vector<std::vector<int64_t>> direct_legacy(num_queries);
    for (int q = 0; q < num_queries; ++q) {
      for (int64_t id : accepted[q]) {
        if (std::binary_search(dead[q].begin(), dead[q].end(), id)) continue;
        legacy.OnAccepted(q, id, direct_legacy[q]);
      }
    }

    for (int q = 0; q < num_queries; ++q) {
      EXPECT_EQ(resolved_pooled[q], resolved_serial[q]) << where << " q=" << q;
      EXPECT_EQ(direct_pooled[q], direct_serial[q]) << where << " q=" << q;
      EXPECT_EQ(resolved_pooled[q], resolved_legacy[q]) << where << " q=" << q;
      EXPECT_EQ(direct_pooled[q], direct_legacy[q]) << where << " q=" << q;
    }
    ExpectManagersAgree(pooled, serial, num_queries, where + " pooled/serial");
    ExpectManagersAgree(pooled, legacy, num_queries, where + " pooled/legacy");
  }

  // Whatever is still parked must drain identically (order within the
  // drain is hash-map dependent, so compare as sorted multisets).
  std::vector<std::pair<int, int64_t>> drain_pooled, drain_serial,
      drain_legacy;
  pooled.DrainAll(drain_pooled);
  serial.DrainAll(drain_serial);
  legacy.DrainAll(drain_legacy);
  std::sort(drain_pooled.begin(), drain_pooled.end());
  std::sort(drain_serial.begin(), drain_serial.end());
  std::sort(drain_legacy.begin(), drain_legacy.end());
  EXPECT_EQ(drain_pooled, drain_serial);
  EXPECT_EQ(drain_pooled, drain_legacy);
}

TEST(EmissionStressTest, RandomizedSchedulesAgreeAcrossReplicas) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    RunStressSchedule(seed, /*num_queries=*/2 + static_cast<int>(seed % 9),
                      /*num_regions=*/24, /*pool_threads=*/7);
  }
}

TEST(EmissionStressTest, WideWorkloadHeavyFlush) {
  // Many shards and a large park population: every flush barrier fans 32
  // shards across 8 workers. This is the cell the TSan build leans on.
  RunStressSchedule(/*seed=*/77, /*num_queries=*/32, /*num_regions=*/48,
                    /*pool_threads=*/8);
}

TEST(EmissionStressTest, SingleQueryDegeneratesToSerial) {
  // One shard: the parallel flush has nothing to fan out and must still
  // match byte for byte.
  RunStressSchedule(/*seed=*/5150, /*num_queries=*/1, /*num_regions=*/16,
                    /*pool_threads=*/4);
}

}  // namespace
}  // namespace caqe
