// Tests for the Top-K-over-join extension: oracle equivalence, progressive
// emission safety, bound-based discarding, and the serial baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "contracts/utility.h"
#include "topk/topk_engine.h"
#include "topk/topk_query.h"
#include "test_util.h"

namespace caqe {
namespace {

using ::caqe::testing::MakeTables;

// The k smallest scores of the full join output (sorted).
std::vector<double> OracleTopKScores(const Table& r, const Table& t,
                                     const TopKWorkload& workload, int q) {
  const TopKQuery& query = workload.query(q);
  std::vector<double> scores;
  std::vector<double> values;
  for (int64_t i = 0; i < r.num_rows(); ++i) {
    for (int64_t j = 0; j < t.num_rows(); ++j) {
      if (r.key(i, query.join_key) != t.key(j, query.join_key)) continue;
      workload.Project(r, i, t, j, values);
      scores.push_back(workload.Score(q, values.data()));
    }
  }
  std::sort(scores.begin(), scores.end());
  if (static_cast<int64_t>(scores.size()) > query.k) {
    scores.resize(query.k);
  }
  return scores;
}

std::vector<double> ReportedScores(const QueryReport& report,
                                   const TopKWorkload& workload, int q) {
  std::vector<double> scores;
  for (const ReportedResult& result : report.tuples) {
    scores.push_back(workload.Score(q, result.values.data()));
  }
  std::sort(scores.begin(), scores.end());
  return scores;
}

TopKWorkload MakeWorkload(int num_dims) {
  TopKWorkload workload;
  for (int k = 0; k < num_dims; ++k) {
    workload.AddOutputDim({k, k, 1.0, 1.0});
  }
  return workload;
}

class TopKEngineTest : public ::testing::TestWithParam<Distribution> {};

TEST_P(TopKEngineTest, BothEnginesMatchTheOracle) {
  auto [r, t] = MakeTables(GetParam(), 300, 3, 0.03);
  TopKWorkload workload = MakeWorkload(3);
  workload.AddQuery({"T1", 0, {1.0, 1.0, 0.0}, 10, 0.9});
  workload.AddQuery({"T2", 0, {0.0, 2.0, 1.0}, 25, 0.5});
  workload.AddQuery({"T3", 0, {1.0, 1.0, 1.0}, 5, 0.2});

  std::vector<Contract> contracts(workload.num_queries(),
                                  MakeLogDecayContract(0.01));
  ExecOptions options;
  options.capture_results = true;

  ContractAwareTopKEngine caqe_engine;
  SerialTopKEngine serial_engine;
  for (TopKEngine* engine :
       std::vector<TopKEngine*>{&caqe_engine, &serial_engine}) {
    const Result<ExecutionReport> result =
        engine->Execute(r, t, workload, contracts, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (int q = 0; q < workload.num_queries(); ++q) {
      SCOPED_TRACE(engine->name() + "/" + workload.query(q).name);
      const std::vector<double> oracle =
          OracleTopKScores(r, t, workload, q);
      const std::vector<double> reported =
          ReportedScores(result->queries[q], workload, q);
      ASSERT_EQ(reported.size(), oracle.size());
      for (size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_NEAR(reported[i], oracle[i], 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, TopKEngineTest,
    ::testing::Values(Distribution::kIndependent, Distribution::kCorrelated,
                      Distribution::kAntiCorrelated),
    [](const ::testing::TestParamInfo<Distribution>& info) {
      return DistributionName(info.param);
    });

TEST(TopKEngineTest, KLargerThanResultSet) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 60, 2, 0.02);
  TopKWorkload workload = MakeWorkload(2);
  workload.AddQuery({"T1", 0, {1.0, 1.0}, 100000, 1.0});
  std::vector<Contract> contracts = {MakeLogDecayContract(0.01)};
  ExecOptions options;
  options.capture_results = true;
  ContractAwareTopKEngine engine;
  const ExecutionReport report =
      engine.Execute(r, t, workload, contracts, options).value();
  // Everything is reported (fewer results exist than k).
  EXPECT_EQ(report.queries[0].results,
            static_cast<int64_t>(OracleTopKScores(r, t, workload, 0).size()));
}

TEST(TopKEngineTest, EmissionsAreProgressiveAndSortedByScore) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 400, 2, 0.05);
  TopKWorkload workload = MakeWorkload(2);
  workload.AddQuery({"T1", 0, {1.0, 1.0}, 50, 1.0});
  std::vector<Contract> contracts = {MakeLogDecayContract(0.01)};
  ExecOptions options;
  options.capture_results = true;
  ContractAwareTopKEngine engine;
  const ExecutionReport report =
      engine.Execute(r, t, workload, contracts, options).value();
  const QueryReport& query = report.queries[0];
  ASSERT_EQ(query.results, 50);
  double last_time = 0.0;
  double last_score = -1e300;
  for (const ReportedResult& result : query.tuples) {
    EXPECT_GE(result.time, last_time);
    const double score = workload.Score(0, result.values.data());
    EXPECT_GE(score + 1e-12, last_score);  // Ascending score order.
    last_time = result.time;
    last_score = score;
  }
  // Progressive: the first result arrives well before the last.
  EXPECT_LT(query.tuples.front().time, query.tuples.back().time);
}

TEST(TopKEngineTest, BoundDiscardingSkipsWork) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 2000, 2, 0.02);
  TopKWorkload workload = MakeWorkload(2);
  workload.AddQuery({"T1", 0, {1.0, 1.0}, 10, 1.0});
  std::vector<Contract> contracts = {MakeLogDecayContract(0.01)};
  ExecOptions options;
  ContractAwareTopKEngine caqe_engine;
  SerialTopKEngine serial_engine;
  const ExecutionReport caqe_report =
      caqe_engine.Execute(r, t, workload, contracts, options).value();
  const ExecutionReport serial_report =
      serial_engine.Execute(r, t, workload, contracts, options).value();
  // Region-bound pruning must discard most regions and materialize far
  // fewer join results than the full-join baseline.
  EXPECT_GT(caqe_report.stats.regions_discarded, 0);
  EXPECT_LT(caqe_report.stats.join_results,
            serial_report.stats.join_results / 2);
}

TEST(TopKEngineTest, ContractAwareBeatsSerialOnDeadlines) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 2000, 2, 0.02);
  TopKWorkload workload = MakeWorkload(2);
  workload.AddQuery({"T1", 0, {1.0, 0.5}, 20, 0.9});
  workload.AddQuery({"T2", 0, {0.5, 1.0}, 20, 0.5});
  workload.AddQuery({"T3", 0, {1.0, 1.0}, 20, 0.1});

  // Calibrate the deadline to the serial engine's completion time.
  std::vector<Contract> throwaway(workload.num_queries(),
                                  MakeLogDecayContract(0.01));
  SerialTopKEngine serial_engine;
  const double serial_total =
      serial_engine.Execute(r, t, workload, throwaway, ExecOptions{})
          .value()
          .stats.virtual_seconds;
  std::vector<Contract> contracts(
      workload.num_queries(), MakeTimeStepContract(0.3 * serial_total));

  ContractAwareTopKEngine caqe_engine;
  const double caqe_sat = caqe_engine
                              .Execute(r, t, workload, contracts,
                                       ExecOptions{})
                              .value()
                              .average_satisfaction;
  const double serial_sat = serial_engine
                                .Execute(r, t, workload, contracts,
                                         ExecOptions{})
                                .value()
                                .average_satisfaction;
  EXPECT_GT(caqe_sat, serial_sat);
}

TEST(TopKEngineTest, KEqualsOne) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 200, 2, 0.05);
  TopKWorkload workload = MakeWorkload(2);
  workload.AddQuery({"T1", 0, {1.0, 1.0}, 1, 1.0});
  std::vector<Contract> contracts = {MakeLogDecayContract(0.01)};
  ExecOptions options;
  options.capture_results = true;
  ContractAwareTopKEngine engine;
  const ExecutionReport report =
      engine.Execute(r, t, workload, contracts, options).value();
  ASSERT_EQ(report.queries[0].results, 1);
  EXPECT_NEAR(
      ReportedScores(report.queries[0], workload, 0)[0],
      OracleTopKScores(r, t, workload, 0)[0], 1e-9);
}

TEST(TopKEngineTest, TiedScoresAtTheBoundary) {
  // Many identical rows produce tied scores straddling the k boundary; the
  // reported score multiset must still match the oracle's.
  Table r("R", 2, 1);
  Table t("T", 2, 1);
  for (int i = 0; i < 6; ++i) r.AppendRow({1.0, 1.0}, {0});
  r.AppendRow({0.5, 0.5}, {0});
  t.AppendRow({1.0, 1.0}, {0});
  TopKWorkload workload = MakeWorkload(2);
  workload.AddQuery({"T1", 0, {1.0, 1.0}, 4, 1.0});
  std::vector<Contract> contracts = {MakeLogDecayContract(0.01)};
  ExecOptions options;
  options.capture_results = true;
  for (int variant = 0; variant < 2; ++variant) {
    std::unique_ptr<TopKEngine> engine;
    if (variant == 0) {
      engine = std::make_unique<ContractAwareTopKEngine>();
    } else {
      engine = std::make_unique<SerialTopKEngine>();
    }
    SCOPED_TRACE(engine->name());
    const ExecutionReport report =
        engine->Execute(r, t, workload, contracts, options).value();
    const std::vector<double> reported =
        ReportedScores(report.queries[0], workload, 0);
    const std::vector<double> oracle = OracleTopKScores(r, t, workload, 0);
    ASSERT_EQ(reported.size(), oracle.size());
    for (size_t i = 0; i < oracle.size(); ++i) {
      EXPECT_NEAR(reported[i], oracle[i], 1e-12);
    }
  }
}

TEST(TopKWorkloadTest, ValidationCatchesErrors) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 50, 2, 0.1);
  TopKWorkload empty;
  EXPECT_FALSE(empty.Validate(r, t).ok());

  TopKWorkload bad_key = MakeWorkload(2);
  bad_key.AddQuery({"T", 7, {1.0, 1.0}, 5, 1.0});
  EXPECT_FALSE(bad_key.Validate(r, t).ok());

  TopKWorkload good = MakeWorkload(2);
  good.AddQuery({"T", 0, {1.0, 1.0}, 5, 1.0});
  EXPECT_TRUE(good.Validate(r, t).ok());

  const Workload region_workload = good.AsRegionWorkload();
  EXPECT_EQ(region_workload.num_queries(), 1);
  EXPECT_EQ(region_workload.query(0).preference, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace caqe
