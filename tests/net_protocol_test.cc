// Hostile-input hardening tests for the wire protocol (src/net/protocol.h)
// and the session recorder (src/net/recorder.h). Every input here comes
// "off the socket": the contract is a stable error Status — never a crash
// (the suite runs under ASan via scripts' sanitizer builds).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "net/recorder.h"
#include "serve/serving.h"

namespace caqe {
namespace net {
namespace {

ProtocolLimits Limits() { return ProtocolLimits{}; }

Status ParseError(const std::string& line) {
  Result<Command> result = ParseCommand(line, Limits());
  EXPECT_FALSE(result.ok()) << "accepted: " << line;
  return result.status();
}

const std::string kGoodSubmit =
    "SUBMIT name=q0 key=0 pref=0,1 priority=0.5 CONTRACT step:1.5";

TEST(ParseCommandTest, AcceptsCanonicalSubmit) {
  Result<Command> result = ParseCommand(kGoodSubmit, Limits());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->kind, CommandKind::kSubmit);
  const SubmitCommand& submit = result->submit;
  EXPECT_EQ(submit.query.name, "q0");
  EXPECT_EQ(submit.query.join_key, 0);
  EXPECT_EQ(submit.query.preference, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(submit.query.priority, 0.5);
  EXPECT_EQ(submit.trace_id, -1);
  EXPECT_NE(submit.contract, nullptr);
  EXPECT_EQ(submit.contract_canonical, "step:1.5");
}

TEST(ParseCommandTest, AcceptsSelectionsDeadlineAndId) {
  Result<Command> result = ParseCommand(
      "SUBMIT id=7 name=a.b:c-d_e key=1 pref=2 deadline=0.25 "
      "sel=r:0:0.1:0.9 sel=t:2:-1:1 CONTRACT hybrid:0.5,0.1,0.2",
      Limits());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const SubmitCommand& submit = result->submit;
  EXPECT_EQ(submit.trace_id, 7);
  EXPECT_DOUBLE_EQ(submit.deadline_seconds, 0.25);
  ASSERT_EQ(submit.query.selections.size(), 2u);
  EXPECT_TRUE(submit.query.selections[0].on_r);
  EXPECT_FALSE(submit.query.selections[1].on_r);
  EXPECT_DOUBLE_EQ(submit.query.selections[1].lo, -1.0);
}

TEST(ParseCommandTest, SimpleVerbs) {
  EXPECT_EQ(ParseCommand("STATUS", Limits())->kind, CommandKind::kStatus);
  EXPECT_EQ(ParseCommand("DRAIN", Limits())->kind, CommandKind::kDrain);
  EXPECT_EQ(ParseCommand("STOP", Limits())->kind, CommandKind::kStop);
  Result<Command> cancel = ParseCommand("CANCEL 3", Limits());
  ASSERT_TRUE(cancel.ok());
  EXPECT_EQ(cancel->kind, CommandKind::kCancel);
  EXPECT_EQ(cancel->cancel_id, 3);
}

TEST(ParseCommandTest, TraceVerbParsesAndHardensAgainstHostileNames) {
  Result<Command> trace = ParseCommand("TRACE q0", Limits());
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(trace->kind, CommandKind::kTrace);
  EXPECT_EQ(trace->trace_name, "q0");
  // Full name charset (same as SUBMIT name=).
  EXPECT_EQ(ParseCommand("TRACE a.b:c-d_e", Limits())->trace_name,
            "a.b:c-d_e");

  EXPECT_EQ(ParseError("TRACE").message(), "bad-command");
  EXPECT_EQ(ParseError("TRACE a b").message(), "bad-command");
  EXPECT_EQ(ParseError("TRACE q(0)").message(), "bad-field name");
  EXPECT_EQ(ParseError("TRACE " + std::string(129, 'a')).message(),
            "bad-field name");
  // An overlong hostile name must not be echoed back into the error: the
  // code stays the same constant-size string.
  EXPECT_EQ(ParseError("TRACE " + std::string(60000, 'a')).message(),
            "bad-field name");
  EXPECT_EQ(ParseError("TRACE q\x01").message(), "bad-byte");
  EXPECT_EQ(ParseError(std::string("TRACE q\x00z", 9)).message(),
            "bad-byte");
}

TEST(ParseCommandTest, StableErrorCodes) {
  EXPECT_EQ(ParseError("").message(), "bad-command");
  EXPECT_EQ(ParseError("FROBNICATE").message(), "bad-command");
  EXPECT_EQ(ParseError("STATUS now").message(), "bad-command");
  EXPECT_EQ(ParseError("CANCEL").message(), "bad-command");
  EXPECT_EQ(ParseError("CANCEL x").message(), "bad-field request-id");
  EXPECT_EQ(ParseError("CANCEL -1").message(), "bad-field request-id");
  EXPECT_EQ(ParseError("SUBMIT key=0 pref=0 CONTRACT step:1").message(),
            "missing-field name");
  EXPECT_EQ(ParseError("SUBMIT name=q pref=0 CONTRACT step:1").message(),
            "missing-field key");
  EXPECT_EQ(ParseError("SUBMIT name=q key=0 CONTRACT step:1").message(),
            "missing-field pref");
  EXPECT_EQ(ParseError("SUBMIT name=q key=0 pref=0").message(),
            "missing-field contract");
  EXPECT_EQ(
      ParseError("SUBMIT name=q name=r key=0 pref=0 CONTRACT step:1")
          .message(),
      "duplicate-field name");
  EXPECT_EQ(
      ParseError("SUBMIT name=q key=0 pref=0 bogus=1 CONTRACT step:1")
          .message(),
      "bad-field bogus");
}

TEST(ParseCommandTest, RejectsHostileFieldValues) {
  // Truncated / malformed numerics.
  EXPECT_EQ(ParseError("SUBMIT name=q key= pref=0 CONTRACT step:1").message(),
            "bad-field key");
  EXPECT_EQ(
      ParseError("SUBMIT name=q key=1e9 pref=0 CONTRACT step:1").message(),
      "bad-field key");
  EXPECT_EQ(
      ParseError("SUBMIT name=q key=0 pref=0,0 CONTRACT step:1").message(),
      "bad-field pref");
  EXPECT_EQ(
      ParseError("SUBMIT name=q key=0 pref=0, CONTRACT step:1").message(),
      "bad-field pref");
  EXPECT_EQ(ParseError("SUBMIT name=q key=0 pref=0 priority=2 "
                       "CONTRACT step:1")
                .message(),
            "bad-field priority");
  EXPECT_EQ(ParseError("SUBMIT name=q key=0 pref=0 priority=nan "
                       "CONTRACT step:1")
                .message(),
            "bad-field priority");
  EXPECT_EQ(ParseError("SUBMIT name=q key=0 pref=0 deadline=-1 "
                       "CONTRACT step:1")
                .message(),
            "bad-field deadline");
  // Hostile name charset.
  EXPECT_EQ(
      ParseError("SUBMIT name=q;rm key=0 pref=0 CONTRACT step:1").message(),
      "bad-field name");
  // Selections: bad table tag, inverted range, wrong arity.
  EXPECT_EQ(ParseError("SUBMIT name=q key=0 pref=0 sel=x:0:0:1 "
                       "CONTRACT step:1")
                .message(),
            "bad-field sel");
  EXPECT_EQ(ParseError("SUBMIT name=q key=0 pref=0 sel=r:0:2:1 "
                       "CONTRACT step:1")
                .message(),
            "bad-field sel");
  EXPECT_EQ(ParseError("SUBMIT name=q key=0 pref=0 sel=r:0:1 "
                       "CONTRACT step:1")
                .message(),
            "bad-field sel");
}

TEST(ParseCommandTest, RejectsNonPrintableBytes) {
  EXPECT_EQ(ParseError(std::string("STATUS\x01")).message(), "bad-byte");
  EXPECT_EQ(ParseError(std::string("STAT\0US", 7)).message(), "bad-byte");
  // Invalid UTF-8 (lone continuation byte) is also non-printable-ASCII.
  EXPECT_EQ(ParseError("SUBMIT name=q\x80 key=0 pref=0 CONTRACT step:1")
                .message(),
            "bad-byte");
}

TEST(ParseCommandTest, EnforcesCaps) {
  ProtocolLimits limits;
  limits.max_line_bytes = 64;
  const std::string long_line(65, 'A');
  EXPECT_EQ(ParseCommand(long_line, limits).status().message(),
            "line-too-long");

  // Name over the cap.
  std::string cmd = "SUBMIT name=" + std::string(Limits().max_name_bytes + 1, 'n') +
                    " key=0 pref=0 CONTRACT step:1";
  EXPECT_EQ(ParseError(cmd).message(), "bad-field name");

  // Too many preference dims.
  std::string pref = "0";
  for (int i = 1; i <= Limits().max_preference_dims; ++i) {
    pref += "," + std::to_string(i);
  }
  EXPECT_EQ(
      ParseError("SUBMIT name=q key=0 pref=" + pref + " CONTRACT step:1")
          .message(),
      "bad-field pref");

  // Too many selections.
  std::string sels;
  for (int i = 0; i <= Limits().max_selections; ++i) {
    sels += " sel=r:0:0:1";
  }
  EXPECT_EQ(
      ParseError("SUBMIT name=q key=0 pref=0" + sels + " CONTRACT step:1")
          .message(),
      "bad-field sel");
}

TEST(ParseContractSpecTest, AllClassesAndErrors) {
  for (const char* spec :
       {"step:1", "log:0.5", "hyper:0.1,0.5", "card:0.5,0.2", "rate:10,0.1",
        "hybrid:0.5,0.2,0.1"}) {
    EXPECT_TRUE(ParseContractSpec(spec).ok()) << spec;
  }
  for (const char* spec :
       {"", "step", "step:", "step:0", "step:-1", "step:x", "step:inf",
        "card:1.5,1", "card:0,1", "rate:10", "hybrid:0.5,0.2",
        "unknown:1"}) {
    Result<Contract> result = ParseContractSpec(spec);
    ASSERT_FALSE(result.ok()) << spec;
    EXPECT_EQ(result.status().message(), "bad-contract") << spec;
  }
}

TEST(ParseContractSpecTest, CanonicalFormRoundTrips) {
  std::string canonical;
  ASSERT_TRUE(ParseContractSpec("step:1.5e0", &canonical).ok());
  EXPECT_EQ(canonical, "step:1.5");
  ASSERT_TRUE(ParseContractSpec("hybrid:0.5,0.1,0.2", &canonical).ok());
  std::string canonical2;
  ASSERT_TRUE(ParseContractSpec(canonical, &canonical2).ok());
  EXPECT_EQ(canonical, canonical2);
}

TEST(FormatSubmitCommandTest, RoundTripsExactly) {
  Result<Command> first = ParseCommand(
      "SUBMIT name=q key=1 pref=0,2 priority=0.3333333333333333 "
      "deadline=0.1 sel=r:1:0.25:0.75 CONTRACT hyper:0.01,0.07",
      Limits());
  ASSERT_TRUE(first.ok());
  const std::string canonical = FormatSubmitCommand(
      first->submit.query, first->submit.contract_canonical,
      first->submit.deadline_seconds, 4);
  Result<Command> second = ParseCommand(canonical, Limits());
  ASSERT_TRUE(second.ok()) << canonical;
  EXPECT_EQ(second->submit.trace_id, 4);
  EXPECT_EQ(second->submit.query.name, first->submit.query.name);
  EXPECT_EQ(second->submit.query.preference, first->submit.query.preference);
  // The doubles must survive the text round trip bit-for-bit.
  EXPECT_EQ(second->submit.query.priority, first->submit.query.priority);
  EXPECT_EQ(second->submit.deadline_seconds, first->submit.deadline_seconds);
  EXPECT_EQ(second->submit.query.selections[0].lo,
            first->submit.query.selections[0].lo);
  EXPECT_EQ(second->submit.contract_canonical,
            first->submit.contract_canonical);
  // Canonical form is a fixed point.
  EXPECT_EQ(FormatSubmitCommand(second->submit.query,
                                second->submit.contract_canonical,
                                second->submit.deadline_seconds, 4),
            canonical);
}

TEST(LineBufferTest, ReassemblesPartialReadsAcrossSegments) {
  LineBuffer buffer(64);
  const std::string wire = "STATUS\r\nCANCEL 1\nDRA";
  // Feed one byte at a time — the worst TCP segmentation.
  std::vector<std::string> lines;
  std::string line;
  for (char c : wire) {
    buffer.Append(&c, 1);
    while (buffer.Next(line) == LineBuffer::Pop::kLine) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "STATUS");  // \r stripped.
  EXPECT_EQ(lines[1], "CANCEL 1");
  EXPECT_EQ(buffer.buffered(), 3u);  // "DRA" awaits its terminator.
  buffer.Append("IN\n", 3);
  ASSERT_EQ(buffer.Next(line), LineBuffer::Pop::kLine);
  EXPECT_EQ(line, "DRAIN");
}

TEST(LineBufferTest, OverflowDiscardsAndResyncs) {
  LineBuffer buffer(8);
  std::string line;
  // A 100-byte un-terminated line: reported once, then silently discarded.
  const std::string big(100, 'x');
  buffer.Append(big.data(), big.size());
  EXPECT_EQ(buffer.Next(line), LineBuffer::Pop::kOverflow);
  EXPECT_EQ(buffer.Next(line), LineBuffer::Pop::kNeedMore);
  buffer.Append("yyy", 3);  // Still the same oversized line.
  EXPECT_EQ(buffer.Next(line), LineBuffer::Pop::kNeedMore);
  EXPECT_LE(buffer.buffered(), 8u);  // Discard mode keeps memory bounded.
  // Terminate the monster; the next line parses cleanly.
  buffer.Append("zzz\nDRAIN\n", 10);
  ASSERT_EQ(buffer.Next(line), LineBuffer::Pop::kLine);
  EXPECT_EQ(line, "DRAIN");
}

TEST(LineBufferTest, TerminatedOverLimitLineDroppedWhole) {
  LineBuffer buffer(4);
  std::string line;
  buffer.Append("toolong\nSTOP\n", 13);
  EXPECT_EQ(buffer.Next(line), LineBuffer::Pop::kOverflow);
  ASSERT_EQ(buffer.Next(line), LineBuffer::Pop::kLine);
  EXPECT_EQ(line, "STOP");
}

TEST(ArrivalQuantizerTest, StrictlyIncreasingAndMonotone) {
  ArrivalQuantizer quantizer(1e-6);
  const int64_t a = quantizer.Next(0.0);
  const int64_t b = quantizer.Next(0.0);  // Same instant: must advance.
  EXPECT_LT(a, b);
  const int64_t c = quantizer.Next(0.5);
  EXPECT_GT(c, b);
  EXPECT_GE(quantizer.TimeOf(c), 0.5);
  // A quantized time re-fed produces the next index, never a duplicate.
  const int64_t d = quantizer.Next(quantizer.TimeOf(c));
  EXPECT_EQ(d, c + 1);
}

TEST(HttpTest, RequestLineAndResponse) {
  EXPECT_TRUE(LooksLikeHttp("GET /metrics HTTP/1.1"));
  EXPECT_TRUE(LooksLikeHttp("HEAD / HTTP/1.0"));
  EXPECT_FALSE(LooksLikeHttp("SUBMIT name=q"));
  Result<HttpRequest> request = ParseHttpRequestLine("GET /healthz HTTP/1.0");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/healthz");
  EXPECT_FALSE(ParseHttpRequestLine("GET").ok());
  EXPECT_FALSE(ParseHttpRequestLine("GET metrics HTTP/1.1").ok());
  const std::string response = HttpResponse(200, "OK", "text/plain", "hi");
  EXPECT_NE(response.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 2), "hi");
}

TEST(SessionRecorderTest, RecordAndLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/caqe_session_rt.trace";
  {
    Result<std::unique_ptr<SessionRecorder>> recorder =
        SessionRecorder::Open(path, 1e-6, {{"rows", "100"}, {"seed", "7"}});
    ASSERT_TRUE(recorder.ok()) << recorder.status().ToString();
    SjQuery query{"q0", 0, {0, 1}, 0.75, {}};
    (*recorder)->RecordSubmit(10, 0, query, "step:0.5", 0.25);
    (*recorder)->RecordCancel(12, 0);
    (*recorder)->Close();
  }
  Result<SessionTrace> trace = LoadSessionTrace(path);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_DOUBLE_EQ(trace->quantum, 1e-6);
  EXPECT_EQ(trace->Attr("rows", ""), "100");
  EXPECT_EQ(trace->Attr("seed", ""), "7");
  EXPECT_EQ(trace->Attr("absent", "dflt"), "dflt");
  ASSERT_EQ(trace->events.size(), 2u);
  EXPECT_EQ(trace->events[0].tq, 10);
  EXPECT_EQ(trace->events[0].command.kind, CommandKind::kSubmit);
  EXPECT_EQ(trace->events[0].command.submit.trace_id, 0);
  EXPECT_DOUBLE_EQ(trace->events[0].command.submit.deadline_seconds, 0.25);
  EXPECT_EQ(trace->events[1].tq, 12);
  EXPECT_EQ(trace->events[1].command.kind, CommandKind::kCancel);
  EXPECT_EQ(trace->events[1].command.cancel_id, 0);
  std::remove(path.c_str());
}

TEST(SessionRecorderTest, LoadRejectsMalformedTraces) {
  const std::string path = ::testing::TempDir() + "/caqe_session_bad.trace";
  const auto write_and_load = [&](const std::string& content) -> Status {
    std::FILE* file = std::fopen(path.c_str(), "w");
    std::fwrite(content.data(), 1, content.size(), file);
    std::fclose(file);
    return LoadSessionTrace(path).status();
  };
  EXPECT_EQ(write_and_load("").message(), "bad-header");
  EXPECT_EQ(write_and_load("BOGUS v9\n").message(), "bad-header");
  EXPECT_EQ(write_and_load("CAQE-SESSION v1\n").message(), "bad-header");
  EXPECT_EQ(write_and_load("CAQE-SESSION v1 quantum=0\n").message(),
            "bad-header");
  const std::string header = "CAQE-SESSION v1 quantum=1e-06\n";
  EXPECT_EQ(write_and_load(header + "SUBMIT name=q\n").message(),
            "bad-at-line");
  EXPECT_EQ(write_and_load(header + "AT x STATUS\n").message(),
            "bad-at-line");
  // Non-monotone tq.
  const std::string submit0 =
      "AT 5 SUBMIT id=0 name=q key=0 pref=0 CONTRACT step:1\n";
  const std::string submit_dup =
      "AT 5 SUBMIT id=1 name=q key=0 pref=0 CONTRACT step:1\n";
  EXPECT_EQ(write_and_load(header + submit0 + submit_dup).message(),
            "bad-at-line");
  // Sparse ids.
  EXPECT_EQ(write_and_load(header +
                           "AT 5 SUBMIT id=3 name=q key=0 pref=0 CONTRACT "
                           "step:1\n")
                .message(),
            "bad-at-line");
  // CANCEL of a never-submitted id.
  EXPECT_EQ(write_and_load(header + "AT 5 CANCEL 0\n").message(),
            "bad-at-line");
  // STATUS is not replayable.
  EXPECT_EQ(write_and_load(header + "AT 5 STATUS\n").message(),
            "bad-at-line");
  LoadSessionTrace("/nonexistent/caqe.trace").status();  // NotFound, no crash.
  std::remove(path.c_str());
}

}  // namespace
}  // namespace net
}  // namespace caqe
