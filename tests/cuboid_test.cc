// Unit and property tests for subspaces, the min-max cuboid (Def. 7), and
// the shared skyline evaluator (Theorem 1 / Corollary 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cuboid/min_max_cuboid.h"
#include "cuboid/shared_skyline.h"
#include "cuboid/subspace.h"
#include "data/generator.h"
#include "skyline/algorithms.h"

namespace caqe {
namespace {

TEST(SubspaceTest, BasicAlgebra) {
  const Subspace a = Subspace::FromDims({0, 2});
  const Subspace b = Subspace::FromDims({0, 1, 2});
  EXPECT_EQ(a.size(), 2);
  EXPECT_TRUE(a.Contains(0));
  EXPECT_FALSE(a.Contains(1));
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.IsStrictSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_FALSE(a.IsStrictSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_EQ(a.Union(b), b);
  EXPECT_EQ(a.Intersect(b), a);
  EXPECT_EQ(a.Dims(), (std::vector<int>{0, 2}));
  EXPECT_EQ(a.ToString(), "{d0,d2}");
  EXPECT_EQ(Subspace::FullSpace(3), Subspace::FromDims({0, 1, 2}));
}

// The paper's running workload (Figures 1 and 6): P1={d0,d1},
// P2={d0,d1,d2}, P3={d1,d2}, P4={d1,d2,d3} (zero-indexed).
std::vector<Subspace> RunningExample() {
  return {Subspace::FromDims({0, 1}), Subspace::FromDims({0, 1, 2}),
          Subspace::FromDims({1, 2}), Subspace::FromDims({1, 2, 3})};
}

TEST(MinMaxCuboidTest, MatchesPaperFigureSix) {
  const MinMaxCuboid cuboid = MinMaxCuboid::Build(RunningExample()).value();
  std::set<uint32_t> masks;
  for (const CuboidNode& node : cuboid.nodes()) {
    masks.insert(node.subspace.mask());
  }
  // Level 0: the four singletons; level 1: {d0,d1} and {d1,d2}; level 2:
  // {d0,d1,d2} and {d1,d2,d3}. Nothing else (e.g. no {d0,d2}, no {d2,d3},
  // no full space).
  const std::set<uint32_t> expected = {
      0b0001, 0b0010, 0b0100, 0b1000,  // singletons
      0b0011, 0b0110,                  // preferences of Q1, Q3
      0b0111, 0b1110,                  // preferences of Q2, Q4
  };
  EXPECT_EQ(masks, expected);
}

TEST(MinMaxCuboidTest, ExampleTwelveServeSets) {
  const MinMaxCuboid cuboid = MinMaxCuboid::Build(RunningExample()).value();
  // {d1,d2} contributes to Q2, Q3 and Q4 (Example 12).
  const int node = cuboid.FindNode(Subspace::FromDims({1, 2}));
  ASSERT_GE(node, 0);
  QuerySet expected;
  expected.Add(1);
  expected.Add(2);
  expected.Add(3);
  EXPECT_EQ(cuboid.nodes()[node].serves, expected);
  EXPECT_EQ(cuboid.nodes()[node].preference_of, QuerySet::Of(2));
}

TEST(MinMaxCuboidTest, EveryPreferenceHasANode) {
  const std::vector<Subspace> prefs = RunningExample();
  const MinMaxCuboid cuboid = MinMaxCuboid::Build(prefs).value();
  for (size_t q = 0; q < prefs.size(); ++q) {
    const int node = cuboid.preference_node(static_cast<int>(q));
    ASSERT_GE(node, 0);
    EXPECT_EQ(cuboid.nodes()[node].subspace, prefs[q]);
    EXPECT_TRUE(cuboid.nodes()[node].preference_of.Contains(
        static_cast<int>(q)));
  }
}

TEST(MinMaxCuboidTest, NodesOrderedFeedersFirst) {
  const MinMaxCuboid cuboid = MinMaxCuboid::Build(RunningExample()).value();
  for (size_t i = 0; i < cuboid.nodes().size(); ++i) {
    const CuboidNode& node = cuboid.nodes()[i];
    if (node.feeder >= 0) {
      EXPECT_LT(node.feeder, static_cast<int>(i));
      EXPECT_TRUE(node.subspace.IsStrictSubsetOf(
          cuboid.nodes()[node.feeder].subspace));
    }
    EXPECT_EQ(node.level, node.subspace.size() - 1);
    EXPECT_FALSE(node.serves.empty());
  }
}

TEST(MinMaxCuboidTest, DefinitionSevenProperties) {
  // Every retained non-singleton, non-preference node must serve more than
  // one query or have no strict superspace with the same serve set.
  const std::vector<Subspace> prefs = {
      Subspace::FromDims({0, 1}), Subspace::FromDims({0, 1, 2, 3}),
      Subspace::FromDims({1, 3})};
  const MinMaxCuboid cuboid = MinMaxCuboid::Build(prefs).value();
  for (const CuboidNode& node : cuboid.nodes()) {
    const bool cond1 =
        node.subspace.size() == 1 || node.serves.size() > 1;
    const bool cond3 = !node.preference_of.empty();
    bool cond2 = true;
    for (const CuboidNode& other : cuboid.nodes()) {
      if (node.subspace.IsStrictSubsetOf(other.subspace) &&
          node.serves == other.serves) {
        cond2 = false;
      }
    }
    EXPECT_TRUE(cond1 || cond2 || cond3) << node.subspace.ToString();
  }
}

TEST(MinMaxCuboidTest, SmallerThanFullSkycube) {
  const MinMaxCuboid cuboid = MinMaxCuboid::Build(RunningExample()).value();
  EXPECT_EQ(cuboid.FullSkycubeSize(), 15);
  EXPECT_LT(cuboid.num_nodes(), 15);
}

TEST(MinMaxCuboidTest, RejectsBadInputs) {
  EXPECT_FALSE(MinMaxCuboid::Build({}).ok());
  EXPECT_FALSE(MinMaxCuboid::Build({Subspace()}).ok());
  // Union dimensionality limit (submask enumeration bound).
  std::vector<int> wide;
  for (int k = 0; k < 21; ++k) wide.push_back(k);
  EXPECT_FALSE(MinMaxCuboid::Build({Subspace::FromDims(wide)}).ok());
  // Query-count limit.
  std::vector<Subspace> many(65, Subspace::FromDims({0, 1}));
  EXPECT_FALSE(MinMaxCuboid::Build(many).ok());
}

TEST(MinMaxCuboidTest, SingleQueryWorkload) {
  const MinMaxCuboid cuboid =
      MinMaxCuboid::Build({Subspace::FromDims({0, 1})}).value();
  // Singletons + the preference itself.
  EXPECT_EQ(cuboid.num_nodes(), 3);
  EXPECT_EQ(cuboid.preference_node(0),
            cuboid.FindNode(Subspace::FromDims({0, 1})));
}

// ---- Shared skyline evaluator ----

PointSet RandomPoints(Distribution dist, int64_t n, int width, uint64_t seed) {
  GeneratorConfig cfg;
  cfg.num_rows = n;
  cfg.num_attrs = width;
  cfg.distribution = dist;
  cfg.seed = seed;
  const Table t = GenerateTable("P", cfg).value();
  PointSet points(width);
  std::vector<double> row(width);
  for (int64_t i = 0; i < n; ++i) {
    for (int k = 0; k < width; ++k) row[k] = t.attr(i, k);
    points.Append(row);
  }
  return points;
}

class SharedSkylineTest : public ::testing::TestWithParam<bool> {};

TEST_P(SharedSkylineTest, QuerySkylinesMatchBruteForce) {
  const bool dva = GetParam();
  const std::vector<Subspace> prefs = RunningExample();
  const MinMaxCuboid cuboid = MinMaxCuboid::Build(prefs).value();
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
    const PointSet points = RandomPoints(dist, 400, 4, 9);
    SharedSkylineEvaluator eval(4, &cuboid, dva);
    for (int64_t i = 0; i < points.size(); ++i) {
      eval.Insert(points.row(i), i);
    }
    for (size_t q = 0; q < prefs.size(); ++q) {
      std::vector<int64_t> members =
          eval.query_skyline(static_cast<int>(q)).MemberIds();
      std::sort(members.begin(), members.end());
      EXPECT_EQ(members, BruteForceSkyline(points, prefs[q].Dims()))
          << "query " << q << " dva=" << dva;
    }
  }
}

TEST_P(SharedSkylineTest, ReportsAcceptanceAndEvictionPerQuery) {
  const bool dva = GetParam();
  const MinMaxCuboid cuboid =
      MinMaxCuboid::Build({Subspace::FromDims({0, 1})}).value();
  SharedSkylineEvaluator eval(2, &cuboid, dva);
  const SharedInsertOutcome first =
      eval.Insert(std::vector<double>{5, 5}.data(), 1);
  EXPECT_TRUE(first.accepted.Contains(0));
  const SharedInsertOutcome second_out =
      eval.Insert(std::vector<double>{1, 1}.data(), 2);
  EXPECT_TRUE(second_out.accepted.Contains(0));
  ASSERT_EQ(second_out.evictions.size(), 1u);
  EXPECT_EQ(second_out.evictions[0].first, 0);
  EXPECT_EQ(second_out.evictions[0].second, int64_t{1});
  const SharedInsertOutcome third =
      eval.Insert(std::vector<double>{2, 2}.data(), 3);
  EXPECT_TRUE(third.accepted.empty());
}

INSTANTIATE_TEST_SUITE_P(DvaModes, SharedSkylineTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "dva" : "tiesafe";
                         });

TEST(SharedSkylineTest, DvaGatingSavesComparisons) {
  const std::vector<Subspace> prefs = RunningExample();
  const MinMaxCuboid cuboid = MinMaxCuboid::Build(prefs).value();
  const PointSet points =
      RandomPoints(Distribution::kIndependent, 800, 4, 13);
  int64_t cmps_dva = 0;
  int64_t cmps_safe = 0;
  SharedSkylineEvaluator dva(4, &cuboid, true);
  SharedSkylineEvaluator safe(4, &cuboid, false);
  for (int64_t i = 0; i < points.size(); ++i) {
    dva.Insert(points.row(i), i, &cmps_dva);
    safe.Insert(points.row(i), i, &cmps_safe);
  }
  EXPECT_LT(cmps_dva, cmps_safe);
}

TEST(SharedSkylineTest, TheoremOneHoldsOnContinuousData) {
  // SKY_U ⊆ SKY_V for U ⊂ V on (tie-free) continuous data.
  const PointSet points =
      RandomPoints(Distribution::kIndependent, 300, 3, 99);
  const std::vector<int64_t> sky_u = BruteForceSkyline(points, {0, 1});
  const std::vector<int64_t> sky_v = BruteForceSkyline(points, {0, 1, 2});
  EXPECT_TRUE(std::includes(sky_v.begin(), sky_v.end(), sky_u.begin(),
                            sky_u.end()));
}

}  // namespace
}  // namespace caqe
