// Tests for the public session facade and engine factory.
#include <gtest/gtest.h>

#include <memory>

#include "caqe/caqe.h"
#include "topk/topk_engine.h"
#include "test_util.h"

namespace caqe {
namespace {

using ::caqe::testing::MakeTables;

TEST(EngineFactoryTest, KnownAndUnknownNames) {
  for (const char* name :
       {"CAQE", "S-JFSL", "JFSL", "SSMJ", "SSMJ+", "ProgXe+", "CAQE-nofb",
        "CAQE-noprune", "CAQE-count"}) {
    Result<std::unique_ptr<Engine>> engine = MakeEngine(name);
    ASSERT_TRUE(engine.ok()) << name;
    EXPECT_EQ((*engine)->name(), name);
  }
  EXPECT_EQ(MakeEngine("nope").status().code(), StatusCode::kNotFound);
}

TEST(EngineFactoryTest, NotFoundErrorEnumeratesRecognizedEngines) {
  const Status status = MakeEngine("bogus").status();
  ASSERT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("bogus"), std::string::npos);
  for (const std::string& name : KnownEngineNames()) {
    EXPECT_NE(status.message().find(name), std::string::npos) << name;
  }
}

TEST(EngineFactoryTest, PaperEnginesInFigureOrder) {
  const auto engines = MakePaperEngines();
  ASSERT_EQ(engines.size(), 5u);
  EXPECT_EQ(engines[0]->name(), "CAQE");
  EXPECT_EQ(engines[1]->name(), "S-JFSL");
  EXPECT_EQ(engines[2]->name(), "JFSL");
  EXPECT_EQ(engines[3]->name(), "ProgXe+");
  EXPECT_EQ(engines[4]->name(), "SSMJ");
}

TEST(SessionTest, QuickstartFlow) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 200, 3, 0.05);
  CaqeSession session(std::move(r), std::move(t));
  const int d0 = session.AddOutputDim({0, 0, 1.0, 1.0});
  const int d1 = session.AddOutputDim({1, 1, 1.0, 1.0});
  const int d2 = session.AddOutputDim({2, 2, 1.0, 1.0});
  session.AddQuery({"fast", 0, {d0, d1}, 0.9}, MakeTimeStepContract(5.0));
  session.AddQuery({"slow", 0, {d1, d2}, 0.3}, MakeLogDecayContract());
  session.options().capture_results = true;

  const Result<ExecutionReport> report = session.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->engine, "CAQE");
  ASSERT_EQ(report->queries.size(), 2u);
  EXPECT_EQ(report->queries[0].name, "fast");
  EXPECT_GT(report->queries[0].results, 0);
  EXPECT_GT(report->queries[1].results, 0);
  EXPECT_FALSE(report->queries[0].tuples.empty());
  EXPECT_GT(report->stats.virtual_seconds, 0.0);
  EXPECT_GE(report->average_satisfaction, -1.0);
  EXPECT_LE(report->average_satisfaction, 1.0);
}

TEST(SessionTest, RunComparisonProducesFiveConsistentReports) {
  auto [r, t] = MakeTables(Distribution::kCorrelated, 150, 2, 0.1);
  CaqeSession session(std::move(r), std::move(t));
  const int d0 = session.AddOutputDim({0, 0, 1.0, 1.0});
  const int d1 = session.AddOutputDim({1, 1, 1.0, 1.0});
  session.AddQuery({"Q1", 0, {d0, d1}, 1.0},
                   MakeHyperbolicDecayContract(2.0));

  const Result<std::vector<ExecutionReport>> reports =
      session.RunComparison();
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 5u);
  // All engines agree on the result cardinality (exactness).
  const int64_t expected = (*reports)[0].queries[0].results;
  EXPECT_GT(expected, 0);
  for (const ExecutionReport& report : *reports) {
    EXPECT_EQ(report.queries[0].results, expected) << report.engine;
  }
}

TEST(SessionTest, RunWithUnknownEngineFails) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 50, 2, 0.2);
  CaqeSession session(std::move(r), std::move(t));
  session.AddOutputDim({0, 0, 1.0, 1.0});
  session.AddQuery({"Q1", 0, {0}, 1.0}, MakeLogDecayContract());
  EXPECT_FALSE(session.RunWith("bogus").ok());
}

TEST(SessionTest, ContractCountMismatchRejected) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 50, 2, 0.2);
  Workload wl;
  wl.AddOutputDim({0, 0, 1.0, 1.0});
  wl.AddQuery({"Q1", 0, {0}, 1.0});
  std::unique_ptr<Engine> engine = MakeEngine("CAQE").value();
  const Result<ExecutionReport> report =
      engine->Execute(r, t, wl, /*contracts=*/{}, ExecOptions{});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(CallbackTest, OnResultStreamsEveryReport) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 200, 3, 0.05);
  Workload wl;
  for (int k = 0; k < 3; ++k) wl.AddOutputDim({k, k, 1.0, 1.0});
  wl.AddQuery({"Q1", 0, {0, 1}, 0.9});
  wl.AddQuery({"Q2", 0, {1, 2}, 0.4});
  std::vector<Contract> contracts(wl.num_queries(), MakeLogDecayContract());

  for (const char* name :
       {"CAQE", "S-JFSL", "JFSL", "SSMJ", "SSMJ+", "ProgXe+"}) {
    SCOPED_TRACE(name);
    ExecOptions options;
    std::vector<int> per_query(wl.num_queries(), 0);
    double last_time = 0.0;
    bool monotone = true;
    options.on_result = [&](int q, double time, double utility) {
      ASSERT_GE(q, 0);
      ASSERT_LT(q, wl.num_queries());
      ++per_query[q];
      if (time < last_time) monotone = false;
      last_time = time;
      EXPECT_LE(utility, 1.0);
    };
    const ExecutionReport report = MakeEngine(name)
                                       .value()
                                       ->Execute(r, t, wl, contracts,
                                                 options)
                                       .value();
    EXPECT_TRUE(monotone) << "callback times went backwards";
    for (int q = 0; q < wl.num_queries(); ++q) {
      EXPECT_EQ(per_query[q], report.queries[q].results);
    }
  }
}

TEST(CallbackTest, TopKEnginesStreamToo) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 200, 2, 0.05);
  TopKWorkload wl;
  wl.AddOutputDim({0, 0, 1.0, 1.0});
  wl.AddOutputDim({1, 1, 1.0, 1.0});
  wl.AddQuery({"T1", 0, {1.0, 1.0}, 15, 1.0});
  std::vector<Contract> contracts = {MakeLogDecayContract()};
  ExecOptions options;
  int streamed = 0;
  options.on_result = [&](int, double, double) { ++streamed; };
  ContractAwareTopKEngine engine;
  const ExecutionReport report =
      engine.Execute(r, t, wl, contracts, options).value();
  EXPECT_EQ(streamed, report.queries[0].results);
}

}  // namespace
}  // namespace caqe
