// Unit tests for the execution layer: emission manager, join kernel, cell
// granularity choice, and the metrics printer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "caqe/session.h"
#include "common/thread_pool.h"
#include "contracts/utility.h"
#include "exec/emission.h"
#include "exec/engine.h"
#include "exec/join_kernel.h"
#include "metrics/export.h"
#include "metrics/printer.h"
#include "partition/partitioner.h"
#include "query/workload_generator.h"
#include "region/region_builder.h"
#include "test_util.h"

namespace caqe {
namespace {

using ::caqe::testing::MakeTables;

TEST(ChooseCellsPerDimTest, RespectsExplicitOverride) {
  ExecOptions options;
  options.cells_per_dim = 7;
  EXPECT_EQ(ChooseCellsPerDim(options, 4, 100000), 7);
}

TEST(ChooseCellsPerDimTest, AutoStaysNearTargetRegions) {
  ExecOptions options;
  options.target_regions = 512;
  // d=4: 512^(1/8) ~ 2.2 -> 2 slices -> 16 cells -> 256 regions.
  EXPECT_EQ(ChooseCellsPerDim(options, 4, 1000000), 2);
  // d=2: 512^(1/4) ~ 4.8 -> 4 slices -> 16 cells -> 256 regions.
  EXPECT_EQ(ChooseCellsPerDim(options, 2, 1000000), 4);
}

TEST(ChooseCellsPerDimTest, AvoidsOverPartitioningTinyTables) {
  ExecOptions options;
  const int cpd = ChooseCellsPerDim(options, 4, 20);
  EXPECT_EQ(cpd, 1);
}

TEST(ExactTotalJoinSizeTest, MatchesNestedLoop) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 150, 2, 0.1);
  int64_t brute = 0;
  for (int64_t i = 0; i < r.num_rows(); ++i) {
    for (int64_t j = 0; j < t.num_rows(); ++j) {
      if (r.key(i, 0) == t.key(j, 0)) ++brute;
    }
  }
  EXPECT_EQ(ExactTotalJoinSize(r, t, 0), brute);
}

TEST(AdaptiveTargetRegionsTest, ScalesWithJoinOutput) {
  ExecOptions options;
  options.target_regions = 512;
  auto [small_r, small_t] = MakeTables(Distribution::kIndependent, 200, 2, 0.01);
  auto [big_r, big_t] = MakeTables(Distribution::kIndependent, 5000, 2, 0.05);
  Workload wl;
  wl.AddOutputDim({0, 0, 1.0, 1.0});
  wl.AddQuery({"Q1", 0, {0}, 1.0});
  const int small_target = AdaptiveTargetRegions(options, small_r, small_t, wl);
  const int big_target = AdaptiveTargetRegions(options, big_r, big_t, wl);
  EXPECT_LT(small_target, big_target);
  EXPECT_GE(small_target, 16);
  EXPECT_LE(big_target, 512);
  // Explicit cells_per_dim bypasses adaptation.
  options.cells_per_dim = 3;
  EXPECT_EQ(AdaptiveTargetRegions(options, small_r, small_t, wl), 512);
}

// ---- Join kernel ----

TEST(JoinKernelTest, MatchesNestedLoopPerRegion) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 200, 2, 0.1);
  const Workload workload =
      MakeSubspaceWorkload(2, 0, 1, PriorityPolicy::kUniform).value();
  const PartitionedTable pr = PartitionTable(r, 2).value();
  const PartitionedTable pt = PartitionTable(t, 2).value();
  const RegionCollection rc = BuildRegions(pr, pt, workload).value();

  CellJoinKernel kernel(&pr, &pt);
  EngineStats stats;
  for (const OutputRegion& region : rc.regions) {
    std::vector<JoinMatch> matches;
    kernel.Join(rc, region, /*slots_mask=*/1, matches, stats);
    // Count nested-loop matches.
    int64_t expected = 0;
    for (int64_t i : pr.cell(region.cell_r).rows) {
      for (int64_t j : pt.cell(region.cell_t).rows) {
        if (r.key(i, 0) == t.key(j, 0)) ++expected;
      }
    }
    EXPECT_EQ(static_cast<int64_t>(matches.size()), expected);
    EXPECT_EQ(expected, region.join_size(0));
    for (const JoinMatch& m : matches) {
      EXPECT_EQ(r.key(m.row_r, 0), t.key(m.row_t, 0));
      EXPECT_EQ(m.slot_mask, 1u);
    }
  }
  EXPECT_GT(stats.join_probes, 0);
  EXPECT_EQ(stats.join_results, rc.total_join_sizes[0]);
}

TEST(JoinKernelTest, MultiSlotDeduplicatesPairs) {
  // Two predicates on the same key column: every matching pair matches
  // both slots and must appear once with both bits set.
  GeneratorConfig cfg;
  cfg.num_rows = 120;
  cfg.num_attrs = 2;
  cfg.join_selectivities = {0.2, 0.2};
  cfg.seed = 31;
  Table r = GenerateTable("R", cfg).value();
  cfg.seed = 32;
  Table t = GenerateTable("T", cfg).value();

  Workload wl;
  wl.AddOutputDim({0, 0, 1.0, 1.0});
  wl.AddOutputDim({1, 1, 1.0, 1.0});
  wl.AddQuery({"Q1", 0, {0, 1}, 1.0});
  wl.AddQuery({"Q2", 1, {0, 1}, 0.5});

  const PartitionedTable pr = PartitionTable(r, 1).value();
  const PartitionedTable pt = PartitionTable(t, 1).value();
  const RegionCollection rc = BuildRegions(pr, pt, wl).value();
  ASSERT_EQ(rc.regions.size(), 1u);
  ASSERT_EQ(rc.predicate_slots.size(), 2u);

  CellJoinKernel kernel(&pr, &pt);
  EngineStats stats;
  std::vector<JoinMatch> matches;
  kernel.Join(rc, rc.regions[0], /*slots_mask=*/0b11, matches, stats);

  std::set<std::pair<int64_t, int64_t>> seen;
  for (const JoinMatch& m : matches) {
    EXPECT_TRUE(seen.emplace(m.row_r, m.row_t).second)
        << "pair reported twice";
    const bool match0 = r.key(m.row_r, 0) == t.key(m.row_t, 0);
    const bool match1 = r.key(m.row_r, 1) == t.key(m.row_t, 1);
    EXPECT_EQ((m.slot_mask & 1) != 0, match0);
    EXPECT_EQ((m.slot_mask & 2) != 0, match1);
    EXPECT_TRUE(match0 || match1);
  }
}

TEST(JoinKernelTest, CacheKeyNeverAliases) {
  // Regression: the cache key used to be cell * 64 + key_column, which
  // aliases (cell, column) pairs whenever a key column index reaches 64 —
  // e.g. (0, 64) and (1, 0) shared an entry, so one (cell, column) pair
  // could silently serve another's hash index. The packed 32/32 key is
  // injective over the full domain.
  std::set<int64_t> seen;
  for (int cell : {0, 1, 2, 63, 64, 65, 1000}) {
    for (int column : {0, 1, 63, 64, 65, 127, 128}) {
      EXPECT_TRUE(seen.insert(CellJoinKernel::CacheKey(cell, column)).second)
          << "cell=" << cell << " column=" << column;
    }
  }
  // The documented historical collision, explicitly.
  EXPECT_NE(CellJoinKernel::CacheKey(0, 64), CellJoinKernel::CacheKey(1, 0));
}

TEST(JoinKernelTest, ParallelJoinMatchesSerial) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 400, 4, 0.1);
  const Workload workload =
      MakeSubspaceWorkload(4, 0, 3, PriorityPolicy::kUniform).value();
  const PartitionedTable pr = PartitionTable(r, 2).value();
  const PartitionedTable pt = PartitionTable(t, 2).value();
  const RegionCollection rc = BuildRegions(pr, pt, workload).value();

  CellJoinKernel serial_kernel(&pr, &pt);
  CellJoinKernel parallel_kernel(&pr, &pt);
  ThreadPool pool(3);
  parallel_kernel.PrefetchIndexes(rc, &pool);
  EngineStats serial_stats;
  EngineStats parallel_stats;
  for (const OutputRegion& region : rc.regions) {
    std::vector<JoinMatch> serial_matches;
    std::vector<JoinMatch> parallel_matches;
    serial_kernel.Join(rc, region, /*slots_mask=*/1, serial_matches,
                       serial_stats);
    parallel_kernel.Join(rc, region, /*slots_mask=*/1, parallel_matches,
                         parallel_stats, &pool);
    ASSERT_EQ(serial_matches.size(), parallel_matches.size());
    for (size_t i = 0; i < serial_matches.size(); ++i) {
      EXPECT_EQ(serial_matches[i].row_r, parallel_matches[i].row_r);
      EXPECT_EQ(serial_matches[i].row_t, parallel_matches[i].row_t);
      EXPECT_EQ(serial_matches[i].slot_mask, parallel_matches[i].slot_mask);
    }
  }
  EXPECT_EQ(serial_stats.join_probes, parallel_stats.join_probes);
  EXPECT_EQ(serial_stats.join_results, parallel_stats.join_results);
}

// ---- Parallel determinism ----

// The contract machinery scores in virtual time, so the *entire report* —
// pScores, emission timestamps, work counters, event traces — must be
// bit-identical at every thread count, for both partitioning structures.
TEST(ParallelDeterminismTest, ReportsAreIdenticalAcrossThreadCounts) {
  auto [r, t] = MakeTables(Distribution::kAntiCorrelated, 400, 4, 0.02);
  const Workload workload =
      MakeSubspaceWorkload(4, 0, 6, PriorityPolicy::kUniform).value();
  const std::vector<Contract> contracts(workload.num_queries(),
                                        MakeLogDecayContract());

  for (PartitionStrategy strategy :
       {PartitionStrategy::kGrid, PartitionStrategy::kQuadTree}) {
    ExecutionReport reference;
    std::vector<ExecEvent> reference_trace;
    for (int threads : {1, 2, 8}) {
      SCOPED_TRACE("strategy=" +
                   std::to_string(static_cast<int>(strategy)) +
                   " threads=" + std::to_string(threads));
      ExecOptions options;
      options.partition_strategy = strategy;
      options.capture_results = true;
      options.num_threads = threads;
      std::vector<ExecEvent> trace;
      options.trace = &trace;
      std::unique_ptr<Engine> engine = MakeEngine("CAQE").value();
      const Result<ExecutionReport> result =
          engine->Execute(r, t, workload, contracts, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      if (threads == 1) {
        reference = *result;
        reference_trace = std::move(trace);
        EXPECT_GT(reference.stats.emitted_results, 0);
        continue;
      }
      const ExecutionReport& report = *result;
      EXPECT_EQ(report.workload_pscore, reference.workload_pscore);
      EXPECT_EQ(report.average_satisfaction,
                reference.average_satisfaction);
      EXPECT_EQ(report.stats.join_probes, reference.stats.join_probes);
      EXPECT_EQ(report.stats.join_results, reference.stats.join_results);
      EXPECT_EQ(report.stats.dominance_cmps, reference.stats.dominance_cmps);
      EXPECT_EQ(report.stats.coarse_ops, reference.stats.coarse_ops);
      EXPECT_EQ(report.stats.emitted_results,
                reference.stats.emitted_results);
      EXPECT_EQ(report.stats.regions_built, reference.stats.regions_built);
      EXPECT_EQ(report.stats.regions_processed,
                reference.stats.regions_processed);
      EXPECT_EQ(report.stats.regions_discarded,
                reference.stats.regions_discarded);
      EXPECT_EQ(report.stats.virtual_seconds,
                reference.stats.virtual_seconds);
      ASSERT_EQ(report.queries.size(), reference.queries.size());
      for (size_t q = 0; q < report.queries.size(); ++q) {
        const QueryReport& got = report.queries[q];
        const QueryReport& want = reference.queries[q];
        EXPECT_EQ(got.pscore, want.pscore);
        EXPECT_EQ(got.results, want.results);
        EXPECT_EQ(got.satisfaction, want.satisfaction);
        ASSERT_EQ(got.utility_trace.size(), want.utility_trace.size());
        for (size_t i = 0; i < got.utility_trace.size(); ++i) {
          EXPECT_EQ(got.utility_trace[i].time, want.utility_trace[i].time);
          EXPECT_EQ(got.utility_trace[i].utility,
                    want.utility_trace[i].utility);
        }
        ASSERT_EQ(got.tuples.size(), want.tuples.size());
        for (size_t i = 0; i < got.tuples.size(); ++i) {
          EXPECT_EQ(got.tuples[i].tuple_id, want.tuples[i].tuple_id);
          EXPECT_EQ(got.tuples[i].time, want.tuples[i].time);
          EXPECT_EQ(got.tuples[i].values, want.tuples[i].values);
        }
      }
      ASSERT_EQ(trace.size(), reference_trace.size());
      for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(static_cast<int>(trace[i].kind),
                  static_cast<int>(reference_trace[i].kind));
        EXPECT_EQ(trace[i].vtime, reference_trace[i].vtime);
        EXPECT_EQ(trace[i].region, reference_trace[i].region);
        EXPECT_EQ(trace[i].query, reference_trace[i].query);
        EXPECT_EQ(trace[i].count, reference_trace[i].count);
      }
    }
  }
}

// ---- Emission manager ----

class EmissionTest : public ::testing::Test {
 protected:
  // Output space: one dim. Two regions: near [0,1], far [5,6]; both serve
  // query 0.
  void SetUp() override {
    workload_.AddOutputDim({0, 0, 1.0, 1.0});
    workload_.AddQuery({"Q1", 0, {0}, 1.0});
    rc_.predicate_slots = {0};
    rc_.slot_of_query = {0};
    rc_.queries_of_slot = {QuerySet::Of(0)};
    rc_.total_join_sizes = {4};
    OutputRegion near;
    near.id = 0;
    near.lower = {0.0};
    near.upper = {1.0};
    near.rql = QuerySet::Of(0);
    near.join_sizes = {2};
    OutputRegion far;
    far.id = 1;
    far.lower = {5.0};
    far.upper = {6.0};
    far.rql = QuerySet::Of(0);
    far.join_sizes = {2};
    rc_.regions = {near, far};
    store_ = std::make_unique<PointSet>(1);
    pending_ = {1, 1};
    manager_ = std::make_unique<EmissionManager>(&workload_, &rc_,
                                                 store_.get(), &pending_);
  }

  Workload workload_;
  RegionCollection rc_;
  std::unique_ptr<PointSet> store_;
  std::vector<char> pending_;
  std::unique_ptr<EmissionManager> manager_;
};

TEST_F(EmissionTest, SafeTupleEmitsImmediately) {
  // A tuple better than every pending region's best corner is safe.
  const int64_t id = store_->Append({-1.0});
  pending_[0] = 0;  // Its own region was just processed.
  std::vector<int64_t> now;
  manager_->OnAccepted(0, id, now);
  EXPECT_EQ(now, std::vector<int64_t>{id});
  EXPECT_EQ(manager_->parked(0), 0);
}

TEST_F(EmissionTest, ThreatenedTupleParksUntilWitnessResolves) {
  // Tuple 5.5 from region 0's processing can be dominated by region 1
  // (lower corner 5.0).
  pending_[0] = 0;
  const int64_t id = store_->Append({5.5});
  std::vector<int64_t> now;
  manager_->OnAccepted(0, id, now);
  EXPECT_TRUE(now.empty());
  EXPECT_EQ(manager_->parked(0), 1);

  pending_[1] = 0;  // Region 1 processed.
  std::vector<std::pair<int, int64_t>> resolved;
  manager_->OnRegionResolved(1, resolved);
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0], std::make_pair(0, id));
  EXPECT_EQ(manager_->parked(0), 0);
}

TEST_F(EmissionTest, EvictedCandidateNeverEmits) {
  pending_[0] = 0;
  const int64_t id = store_->Append({5.5});
  std::vector<int64_t> now;
  manager_->OnAccepted(0, id, now);
  ASSERT_TRUE(now.empty());
  manager_->OnEvicted(0, id);
  EXPECT_EQ(manager_->parked(0), 0);

  pending_[1] = 0;
  std::vector<std::pair<int, int64_t>> resolved;
  manager_->OnRegionResolved(1, resolved);
  EXPECT_TRUE(resolved.empty());
}

TEST_F(EmissionTest, PruningAQueryResolvesThreat) {
  pending_[0] = 0;
  const int64_t id = store_->Append({5.5});
  std::vector<int64_t> now;
  manager_->OnAccepted(0, id, now);
  ASSERT_TRUE(now.empty());
  // Region 1 loses query 0 from its lineage (dominated-region discarding).
  rc_.regions[1].rql.Remove(0);
  std::vector<std::pair<int, int64_t>> resolved;
  manager_->OnRegionResolvedForQuery(1, 0, resolved);
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].second, id);
}

TEST_F(EmissionTest, DrainFlushesLeftovers) {
  const int64_t id = store_->Append({5.5});
  pending_[0] = 0;
  std::vector<int64_t> now;
  manager_->OnAccepted(0, id, now);
  ASSERT_TRUE(now.empty());
  std::vector<std::pair<int, int64_t>> drained;
  manager_->DrainAll(drained);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].second, id);
  EXPECT_EQ(manager_->parked(0), 0);
}

// ---- Metrics printer ----

TEST(PrinterTest, RendersAlignedTableAndCsv) {
  TablePrinter printer({"engine", "score"});
  printer.AddRow({"CAQE", "0.91"});
  printer.AddRow({"S-JFSL", "0.45"});
  const std::string table = printer.Render();
  EXPECT_NE(table.find("| CAQE"), std::string::npos);
  EXPECT_NE(table.find("| engine"), std::string::npos);
  EXPECT_NE(table.find("|---"), std::string::npos);
  const std::string csv = printer.RenderCsv();
  EXPECT_NE(csv.find("engine,score\n"), std::string::npos);
  EXPECT_NE(csv.find("CAQE,0.91\n"), std::string::npos);
}

TEST(ExportTest, CsvShapes) {
  ExecutionReport report;
  report.engine = "CAQE";
  report.average_satisfaction = 0.5;
  report.workload_pscore = 12.0;
  report.stats.join_results = 100;
  QueryReport query;
  query.name = "Q1";
  query.results = 2;
  query.pscore = 1.5;
  query.satisfaction = 0.75;
  query.utility_trace = {{0.5, 1.0}, {1.5, 0.25}};
  report.queries.push_back(query);

  const std::string summary = ReportSummaryCsv({report});
  EXPECT_NE(summary.find("engine,avg_satisfaction"), std::string::npos);
  EXPECT_NE(summary.find("CAQE,0.500000"), std::string::npos);

  const std::string breakdown = QueryBreakdownCsv(report);
  EXPECT_NE(breakdown.find("CAQE,Q1,2,1.500000,0.750000"),
            std::string::npos);

  const std::string trace = UtilityTraceCsv(report);
  // Two data rows plus the header.
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '\n'), 3);
  EXPECT_NE(trace.find("CAQE,Q1,0.500000000,1.000000"), std::string::npos);
}

TEST(ExportTest, WriteTextFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/caqe_export_test.csv";
  ASSERT_TRUE(WriteTextFile(path, "a,b\n1,2\n").ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {0};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "a,b\n1,2\n");
  EXPECT_FALSE(WriteTextFile("/nonexistent-dir/x.csv", "x").ok());
}

TEST(PrinterTest, Formatting) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(-42), "-42");
  EXPECT_EQ(FormatCount(0), "0");
}

}  // namespace
}  // namespace caqe
