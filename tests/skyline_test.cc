// Unit and property tests for the skyline kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "data/generator.h"
#include "skyline/algorithms.h"
#include "skyline/cardinality.h"
#include "skyline/dominance.h"
#include "skyline/incremental.h"
#include "skyline/point_set.h"

namespace caqe {
namespace {

TEST(DominanceTest, PaperExampleThree) {
  // Hotels h1($200, 5, 0.5, $20), h2($350, 5, 0.5, $20), h3($89, 2, 3, $0);
  // smaller preferred everywhere. h1 dominates h2; h1 vs h3 incomparable.
  const std::vector<double> h1 = {200, 5, 0.5, 20};
  const std::vector<double> h2 = {350, 5, 0.5, 20};
  const std::vector<double> h3 = {89, 2, 3, 0};
  const std::vector<int> full = {0, 1, 2, 3};
  EXPECT_EQ(CompareDominance(h1.data(), h2.data(), full),
            DomResult::kDominates);
  EXPECT_EQ(CompareDominance(h2.data(), h1.data(), full),
            DomResult::kDominatedBy);
  EXPECT_EQ(CompareDominance(h1.data(), h3.data(), full),
            DomResult::kIncomparable);
}

TEST(DominanceTest, PaperExampleFourSubspace) {
  // In subspace {price, wifi}, h3 dominates both h1 and h2 (Example 4).
  const std::vector<double> h1 = {200, 5, 0.5, 20};
  const std::vector<double> h2 = {350, 5, 0.5, 20};
  const std::vector<double> h3 = {89, 2, 3, 0};
  const std::vector<int> pw = {0, 3};
  EXPECT_TRUE(Dominates(h3.data(), h1.data(), pw));
  EXPECT_TRUE(Dominates(h3.data(), h2.data(), pw));
}

TEST(DominanceTest, EqualTuplesDoNotDominate) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {1, 2, 3};
  const std::vector<int> dims = {0, 1, 2};
  EXPECT_EQ(CompareDominance(a.data(), b.data(), dims), DomResult::kEqual);
  EXPECT_FALSE(Dominates(a.data(), b.data(), dims));
  EXPECT_TRUE(WeaklyDominates(a.data(), b.data(), dims));
}

TEST(DominanceTest, WeakVsStrict) {
  const std::vector<double> a = {1, 2};
  const std::vector<double> b = {1, 3};
  const std::vector<int> dims = {0, 1};
  EXPECT_TRUE(WeaklyDominates(a.data(), b.data(), dims));
  EXPECT_TRUE(Dominates(a.data(), b.data(), dims));
  EXPECT_FALSE(WeaklyDominates(b.data(), a.data(), dims));
}

TEST(DominanceTest, AxiomsOnRandomPoints) {
  // Irreflexivity, antisymmetry, transitivity on random triples.
  Rng rng(5);
  const std::vector<int> dims = {0, 1, 2};
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::vector<double>> pts(3, std::vector<double>(3));
    for (auto& p : pts) {
      for (double& v : p) v = rng.Uniform(0, 10);
    }
    EXPECT_FALSE(Dominates(pts[0].data(), pts[0].data(), dims));
    if (Dominates(pts[0].data(), pts[1].data(), dims)) {
      EXPECT_FALSE(Dominates(pts[1].data(), pts[0].data(), dims));
      if (Dominates(pts[1].data(), pts[2].data(), dims)) {
        EXPECT_TRUE(Dominates(pts[0].data(), pts[2].data(), dims));
      }
    }
  }
}

PointSet RandomPoints(Distribution dist, int64_t n, int width, uint64_t seed) {
  GeneratorConfig cfg;
  cfg.num_rows = n;
  cfg.num_attrs = width;
  cfg.distribution = dist;
  cfg.seed = seed;
  const Table t = GenerateTable("P", cfg).value();
  PointSet points(width);
  std::vector<double> row(width);
  for (int64_t i = 0; i < n; ++i) {
    for (int k = 0; k < width; ++k) row[k] = t.attr(i, k);
    points.Append(row);
  }
  return points;
}

using AlgoCase = std::tuple<Distribution, int, int64_t>;

class SkylineAlgoTest : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(SkylineAlgoTest, BnlAndSfsMatchBruteForce) {
  const auto [dist, d, n] = GetParam();
  const PointSet points = RandomPoints(dist, n, d, 77 + d + n);
  std::vector<int> dims(d);
  for (int k = 0; k < d; ++k) dims[k] = k;

  const std::vector<int64_t> oracle = BruteForceSkyline(points, dims);
  EXPECT_EQ(BnlSkyline(points, dims), oracle);
  EXPECT_EQ(SfsSkyline(points, dims), oracle);
  EXPECT_EQ(DivideConquerSkyline(points, dims), oracle);
}

TEST_P(SkylineAlgoTest, SubspaceResultsMatchBruteForce) {
  const auto [dist, d, n] = GetParam();
  if (d < 2) GTEST_SKIP();
  const PointSet points = RandomPoints(dist, n, d, 123 + d);
  // Every 2-dim subspace.
  for (int a = 0; a < d; ++a) {
    for (int b = a + 1; b < d; ++b) {
      const std::vector<int> dims = {a, b};
      const std::vector<int64_t> oracle = BruteForceSkyline(points, dims);
      EXPECT_EQ(BnlSkyline(points, dims), oracle);
      EXPECT_EQ(SfsSkyline(points, dims), oracle);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkylineAlgoTest,
    ::testing::Combine(
        ::testing::Values(Distribution::kIndependent,
                          Distribution::kCorrelated,
                          Distribution::kAntiCorrelated),
        ::testing::Values(2, 3, 4), ::testing::Values<int64_t>(1, 50, 400)),
    [](const ::testing::TestParamInfo<AlgoCase>& info) {
      return std::string(DistributionName(std::get<0>(info.param))) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

TEST(SkylineAlgoTest, SfsUsesFewerComparisonsThanBruteForce) {
  const PointSet points =
      RandomPoints(Distribution::kIndependent, 500, 3, 999);
  const std::vector<int> dims = {0, 1, 2};
  int64_t brute = 0;
  int64_t sfs = 0;
  BruteForceSkyline(points, dims, &brute);
  SfsSkyline(points, dims, &sfs);
  EXPECT_LT(sfs, brute / 2);
}

TEST(SkylineAlgoTest, DuplicatePointsAllSurvive) {
  PointSet points(2);
  points.Append({1.0, 2.0});
  points.Append({1.0, 2.0});
  points.Append({3.0, 4.0});  // Dominated by both copies.
  const std::vector<int> dims = {0, 1};
  const std::vector<int64_t> expected = {0, 1};
  EXPECT_EQ(BruteForceSkyline(points, dims), expected);
  EXPECT_EQ(BnlSkyline(points, dims), expected);
  EXPECT_EQ(SfsSkyline(points, dims), expected);
  EXPECT_EQ(DivideConquerSkyline(points, dims), expected);
}

TEST(SkylineAlgoTest, DivideConquerHandlesMassiveTies) {
  // Many identical points plus a grid with heavy per-dimension ties: the
  // split rotation must terminate and stay exact.
  PointSet points(3);
  for (int i = 0; i < 50; ++i) points.Append({1.0, 1.0, 1.0});
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      points.Append({static_cast<double>(a), static_cast<double>(b), 2.0});
    }
  }
  const std::vector<int> dims = {0, 1, 2};
  EXPECT_EQ(DivideConquerSkyline(points, dims),
            BruteForceSkyline(points, dims));
}

TEST(SkylineAlgoTest, DivideConquerBeatsBruteForceComparisons) {
  const PointSet points =
      RandomPoints(Distribution::kIndependent, 2000, 3, 555);
  const std::vector<int> dims = {0, 1, 2};
  int64_t brute = 0;
  int64_t dnc = 0;
  BruteForceSkyline(points, dims, &brute);
  DivideConquerSkyline(points, dims, &dnc);
  EXPECT_LT(dnc, brute / 2);
}

TEST(SkylineAlgoTest, EmptyInput) {
  PointSet points(2);
  const std::vector<int> dims = {0, 1};
  EXPECT_TRUE(BruteForceSkyline(points, dims).empty());
  EXPECT_TRUE(BnlSkyline(points, dims).empty());
  EXPECT_TRUE(SfsSkyline(points, dims).empty());
  EXPECT_TRUE(DivideConquerSkyline(points, dims).empty());
}

TEST(IncrementalSkylineTest, MatchesBatchUnderRandomInserts) {
  for (Distribution dist :
       {Distribution::kIndependent, Distribution::kAntiCorrelated}) {
    const PointSet points = RandomPoints(dist, 300, 3, 42);
    const std::vector<int> dims = {0, 1, 2};
    IncrementalSkyline inc(3, dims);
    for (int64_t i = 0; i < points.size(); ++i) {
      inc.Insert(points.row(i), i);
    }
    std::vector<int64_t> members = inc.MemberIds();
    std::sort(members.begin(), members.end());
    EXPECT_EQ(members, BruteForceSkyline(points, dims));
  }
}

TEST(IncrementalSkylineTest, ReportsEvictions) {
  IncrementalSkyline inc(2, {0, 1});
  EXPECT_TRUE(inc.Insert(std::vector<double>{5, 5}.data(), 1).accepted);
  EXPECT_TRUE(inc.Insert(std::vector<double>{4, 6}.data(), 2).accepted);
  // (4.5, 4.5) dominates (5, 5) but is incomparable with (4, 6).
  const InsertOutcome out = inc.Insert(std::vector<double>{4.5, 4.5}.data(), 3);
  EXPECT_TRUE(out.accepted);
  EXPECT_EQ(out.evicted, std::vector<int64_t>{1});
  EXPECT_EQ(inc.size(), 2);
}

TEST(IncrementalSkylineTest, RejectsDominatedWithoutEvicting) {
  IncrementalSkyline inc(2, {0, 1});
  inc.Insert(std::vector<double>{1, 1}.data(), 1);
  const InsertOutcome out = inc.Insert(std::vector<double>{2, 2}.data(), 2);
  EXPECT_FALSE(out.accepted);
  EXPECT_TRUE(out.evicted.empty());
  EXPECT_EQ(inc.size(), 1);
}

TEST(IncrementalSkylineTest, EqualPointsCoexist) {
  IncrementalSkyline inc(2, {0, 1});
  EXPECT_TRUE(inc.Insert(std::vector<double>{1, 2}.data(), 1).accepted);
  EXPECT_TRUE(inc.Insert(std::vector<double>{1, 2}.data(), 2).accepted);
  EXPECT_EQ(inc.size(), 2);
}

TEST(IncrementalSkylineTest, SubspaceDimsRespected) {
  IncrementalSkyline inc(3, {0, 2});  // Ignore dim 1.
  inc.Insert(std::vector<double>{1, 100, 1}.data(), 1);
  // Dominated on {0,2} despite better dim 1.
  EXPECT_FALSE(inc.Insert(std::vector<double>{2, 0, 2}.data(), 2).accepted);
}

TEST(CardinalityTest, BuchtaFormulaValues) {
  // d=1: always 1. d=2: ln(n). d=3: ln(n)^2/2.
  EXPECT_DOUBLE_EQ(BuchtaSkylineCardinality(1000, 1), 1.0);
  EXPECT_NEAR(BuchtaSkylineCardinality(1000, 2), std::log(1000.0), 1e-9);
  EXPECT_NEAR(BuchtaSkylineCardinality(1000, 3),
              std::pow(std::log(1000.0), 2) / 2.0, 1e-9);
  EXPECT_NEAR(BuchtaSkylineCardinality(1000, 4),
              std::pow(std::log(1000.0), 3) / 6.0, 1e-9);
}

TEST(CardinalityTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(BuchtaSkylineCardinality(0.5, 3), 0.0);
  EXPECT_GE(BuchtaSkylineCardinality(1.0, 3), 1.0);   // Floor of 1.
  EXPECT_GE(BuchtaSkylineCardinality(2.0, 5), 1.0);
}

TEST(CardinalityTest, MonotoneInNAndD) {
  for (int d = 2; d <= 5; ++d) {
    EXPECT_LE(BuchtaSkylineCardinality(1000, d),
              BuchtaSkylineCardinality(10000, d));
  }
  // Larger d => more skyline points (for large n).
  EXPECT_LT(BuchtaSkylineCardinality(1e6, 2), BuchtaSkylineCardinality(1e6, 4));
}

TEST(CardinalityTest, RegionEstimateUsesJoinSize) {
  const double est = EstimateRegionSkylineCardinality(0.1, 100, 100, 3);
  EXPECT_NEAR(est, std::pow(std::log(1000.0), 2) / 2.0, 1e-9);
}

TEST(CardinalityTest, ApproximatesIndependentData) {
  // Buchta should be within a small factor of the true expected skyline
  // size on independent data.
  const PointSet points =
      RandomPoints(Distribution::kIndependent, 2000, 3, 321);
  const std::vector<int> dims = {0, 1, 2};
  const double actual =
      static_cast<double>(BruteForceSkyline(points, dims).size());
  const double estimate = BuchtaSkylineCardinality(2000, 3);
  EXPECT_GT(actual, estimate / 3.0);
  EXPECT_LT(actual, estimate * 3.0);
}

}  // namespace
}  // namespace caqe
