// Unit and property tests for MQLA: output regions, region dominance
// (Def. 8), coarse skyline pruning, and the dependency graph (Def. 9).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "partition/partitioner.h"
#include "query/query.h"
#include "query/workload_generator.h"
#include "region/dependency_graph.h"
#include "region/region_builder.h"
#include "common/rng.h"
#include "region/region_dominance.h"
#include "test_util.h"

namespace caqe {
namespace {

using ::caqe::testing::FullJoinOutput;
using ::caqe::testing::MakeTables;

OutputRegion Box(std::vector<double> lower, std::vector<double> upper) {
  OutputRegion region;
  region.lower = std::move(lower);
  region.upper = std::move(upper);
  return region;
}

TEST(RegionDominanceTest, FullPartialIncomparable) {
  const std::vector<int> dims = {0, 1};
  // a entirely better than b.
  EXPECT_EQ(CompareRegions(Box({0, 0}, {1, 1}), Box({2, 2}, {3, 3}), dims),
            RegionDomResult::kFullyDominates);
  // Overlapping boxes: only partial.
  EXPECT_EQ(CompareRegions(Box({0, 0}, {2, 2}), Box({1, 1}, {3, 3}), dims),
            RegionDomResult::kPartiallyDominates);
  // b better than a in dim 0: incomparable.
  EXPECT_EQ(CompareRegions(Box({5, 0}, {6, 1}), Box({0, 5}, {1, 6}), dims),
            RegionDomResult::kIncomparable);
}

TEST(RegionDominanceTest, TouchingBoundsAreNotFullDominance) {
  const std::vector<int> dims = {0, 1};
  // Upper corner equals lower corner of b: no strict dimension.
  EXPECT_EQ(CompareRegions(Box({0, 0}, {2, 2}), Box({2, 2}, {3, 3}), dims),
            RegionDomResult::kPartiallyDominates);
  // Strict in one dim, touching in the other: full.
  EXPECT_EQ(CompareRegions(Box({0, 0}, {1, 2}), Box({2, 2}, {3, 3}), dims),
            RegionDomResult::kFullyDominates);
}

TEST(RegionDominanceTest, SubspaceSelectsDims) {
  // a beats b on dim 0 but loses on dim 1.
  const OutputRegion a = Box({0, 9}, {1, 10});
  const OutputRegion b = Box({5, 0}, {6, 1});
  EXPECT_EQ(CompareRegions(a, b, {0}), RegionDomResult::kFullyDominates);
  EXPECT_EQ(CompareRegions(a, b, {1}), RegionDomResult::kIncomparable);
  EXPECT_EQ(CompareRegions(a, b, {0, 1}), RegionDomResult::kIncomparable);
}

TEST(RegionDominanceTest, PointTests) {
  const OutputRegion b = Box({5, 5}, {7, 7});
  const std::vector<double> better = {4, 5};
  const std::vector<double> equal = {5, 5};
  const std::vector<double> inside = {6, 6};
  EXPECT_TRUE(PointFullyDominatesRegion(better.data(), b, {0, 1}));
  EXPECT_FALSE(PointFullyDominatesRegion(equal.data(), b, {0, 1}));
  EXPECT_FALSE(PointFullyDominatesRegion(inside.data(), b, {0, 1}));

  EXPECT_TRUE(RegionCanDominatePoint(b, inside.data(), {0, 1}));
  EXPECT_FALSE(RegionCanDominatePoint(b, better.data(), {0, 1}));
  EXPECT_TRUE(RegionCanDominatePoint(b, equal.data(), {0, 1}));
}

TEST(RegionDominanceTest, FullDominanceIsStrictPartialOrder) {
  // Irreflexive, asymmetric, transitive — on random boxes. This is what
  // makes one-pass coarse pruning sound.
  Rng rng(17);
  const std::vector<int> dims = {0, 1, 2};
  auto random_box = [&]() {
    OutputRegion region;
    region.lower.resize(3);
    region.upper.resize(3);
    for (int k = 0; k < 3; ++k) {
      const double a = rng.Uniform(0, 10);
      const double b = rng.Uniform(0, 10);
      region.lower[k] = std::min(a, b);
      region.upper[k] = std::max(a, b);
    }
    return region;
  };
  auto full = [&](const OutputRegion& a, const OutputRegion& b) {
    return CompareRegions(a, b, dims) == RegionDomResult::kFullyDominates;
  };
  for (int trial = 0; trial < 300; ++trial) {
    const OutputRegion a = random_box();
    const OutputRegion b = random_box();
    const OutputRegion c = random_box();
    EXPECT_FALSE(full(a, a));
    if (full(a, b)) {
      EXPECT_FALSE(full(b, a));
      if (full(b, c)) {
        EXPECT_TRUE(full(a, c));
      }
    }
    // Full dominance implies the point-level guarantees used downstream.
    if (full(a, b)) {
      EXPECT_TRUE(PointFullyDominatesRegion(a.upper.data(), b, dims));
      EXPECT_TRUE(RegionCanDominatePoint(a, b.lower.data(), dims));
    }
  }
}

TEST(RegionDominanceTest, PaperExampleSixteen) {
  // Example 16's three output regions (1-indexed d1..d4 -> dims 0..3).
  const OutputRegion r1 = Box({6, 8, 8, 4}, {8, 10, 10, 6});
  const OutputRegion r2 = Box({8, 6, 6, 5}, {10, 8, 8, 7});
  const OutputRegion r3 = Box({7, 5, 4, 1}, {9, 7, 6, 4});
  auto undominated = [&](const OutputRegion& victim,
                         const std::vector<int>& dims) {
    for (const OutputRegion* other : {&r1, &r2, &r3}) {
      if (other == &victim) continue;
      if (CompareRegions(*other, victim, dims) ==
          RegionDomResult::kFullyDominates) {
        return false;
      }
    }
    return true;
  };
  // Level 0: R1 in SKY_{d1}; R3 in SKY_{d2}, SKY_{d3}, SKY_{d4}.
  EXPECT_TRUE(undominated(r1, {0}));
  EXPECT_TRUE(undominated(r3, {1}));
  EXPECT_TRUE(undominated(r3, {2}));
  EXPECT_TRUE(undominated(r3, {3}));
  // Level 1 (end of processing): SKY_{d1,d2} = {R1, R2, R3} and
  // SKY_{d2,d3} = {R2, R3} — R1 is fully dominated there by R3.
  EXPECT_TRUE(undominated(r1, {0, 1}));
  EXPECT_TRUE(undominated(r2, {0, 1}));
  EXPECT_TRUE(undominated(r3, {0, 1}));
  EXPECT_FALSE(undominated(r1, {1, 2}));
  EXPECT_TRUE(undominated(r2, {1, 2}));
  EXPECT_TRUE(undominated(r3, {1, 2}));
  EXPECT_EQ(CompareRegions(r3, r1, {1, 2}),
            RegionDomResult::kFullyDominates);
}

class RegionBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto [r, t] = MakeTables(Distribution::kIndependent, 300, 3, 0.05);
    r_ = std::make_unique<Table>(std::move(r));
    t_ = std::make_unique<Table>(std::move(t));
    workload_ =
        MakeSubspaceWorkload(3, 0, 4, PriorityPolicy::kUniform).value();
    part_r_ = std::make_unique<PartitionedTable>(
        PartitionTable(*r_, 2).value());
    part_t_ = std::make_unique<PartitionedTable>(
        PartitionTable(*t_, 2).value());
    rc_ = std::make_unique<RegionCollection>(
        BuildRegions(*part_r_, *part_t_, workload_).value());
  }

  std::unique_ptr<Table> r_;
  std::unique_ptr<Table> t_;
  Workload workload_;
  std::unique_ptr<PartitionedTable> part_r_;
  std::unique_ptr<PartitionedTable> part_t_;
  std::unique_ptr<RegionCollection> rc_;
};

TEST_F(RegionBuilderTest, PredicateBookkeeping) {
  EXPECT_EQ(rc_->predicate_slots, (std::vector<int>{0}));
  for (int q = 0; q < workload_.num_queries(); ++q) {
    EXPECT_EQ(rc_->slot_of_query[q], 0);
  }
  EXPECT_EQ(rc_->queries_of_slot[0],
            QuerySet::AllOf(workload_.num_queries()));
}

TEST_F(RegionBuilderTest, JoinSizesSumToTotal) {
  int64_t sum = 0;
  for (const OutputRegion& region : rc_->regions) {
    sum += region.join_size(0);
  }
  EXPECT_EQ(sum, rc_->total_join_sizes[0]);
  // Exact total must match the nested-loop join size.
  const PointSet output = FullJoinOutput(*r_, *t_, workload_, 0);
  EXPECT_EQ(rc_->total_join_sizes[0], output.size());
}

TEST_F(RegionBuilderTest, BoundsContainEveryJoinResult) {
  // Every projected join tuple of a cell pair must fall inside the region
  // box.
  std::vector<double> values;
  for (const OutputRegion& region : rc_->regions) {
    const LeafCell& cr = part_r_->cell(region.cell_r);
    const LeafCell& ct = part_t_->cell(region.cell_t);
    for (int64_t i : cr.rows) {
      for (int64_t j : ct.rows) {
        if (r_->key(i, 0) != t_->key(j, 0)) continue;
        workload_.Project(*r_, i, *t_, j, values);
        for (int k = 0; k < workload_.num_output_dims(); ++k) {
          EXPECT_GE(values[k], region.lower[k] - 1e-9);
          EXPECT_LE(values[k], region.upper[k] + 1e-9);
        }
      }
    }
  }
}

TEST_F(RegionBuilderTest, LineageMatchesSignatureIntersection) {
  for (const OutputRegion& region : rc_->regions) {
    EXPECT_FALSE(region.rql.empty());
    EXPECT_EQ(region.join_size(0) > 0,
              region.rql == QuerySet::AllOf(workload_.num_queries()));
    EXPECT_EQ(region.rows_r,
              static_cast<int64_t>(part_r_->cell(region.cell_r).rows.size()));
  }
}

TEST_F(RegionBuilderTest, CoarsePruneIsSound) {
  // Tuples of regions pruned for query q must all be dominated in q's
  // preference by some tuple of the surviving join output.
  RegionCollection pruned = *rc_;
  const CoarsePruneStats stats = CoarseSkylinePrune(pruned, workload_);
  EXPECT_GE(stats.pruned_pairs, 0);

  for (int q = 0; q < workload_.num_queries(); ++q) {
    const auto oracle = ::caqe::testing::OracleSkyline(*r_, *t_, workload_, q);
    // Collect the join output restricted to unpruned regions for q.
    PointSet survivors(workload_.num_output_dims());
    std::vector<double> values;
    for (const OutputRegion& region : pruned.regions) {
      if (!region.rql.Contains(q)) continue;
      const LeafCell& cr = part_r_->cell(region.cell_r);
      const LeafCell& ct = part_t_->cell(region.cell_t);
      for (int64_t i : cr.rows) {
        for (int64_t j : ct.rows) {
          if (r_->key(i, 0) != t_->key(j, 0)) continue;
          workload_.Project(*r_, i, *t_, j, values);
          survivors.Append(values);
        }
      }
    }
    // The skyline of the survivors must equal the oracle skyline.
    const std::vector<int>& pref = workload_.query(q).preference;
    const std::vector<int64_t> sky = BruteForceSkyline(survivors, pref);
    std::vector<std::vector<double>> rows;
    for (int64_t id : sky) {
      std::vector<double> row;
      for (int k : pref) row.push_back(survivors.row(id)[k]);
      rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end());
    EXPECT_EQ(rows, oracle) << "query " << q;
  }
}

TEST_F(RegionBuilderTest, DependencyGraphInvariants) {
  RegionCollection pruned = *rc_;
  CoarseSkylinePrune(pruned, workload_);
  const DependencyGraph dg = DependencyGraph::Build(pruned, workload_);
  ASSERT_EQ(dg.num_regions(), static_cast<int>(pruned.regions.size()));

  // In-degrees match incoming edge counts; edges annotate shared queries
  // with a real (full or partial) dominance relation.
  std::vector<int> in_count(dg.num_regions(), 0);
  for (int i = 0; i < dg.num_regions(); ++i) {
    for (const auto& [target, queries] : dg.out_edges(i)) {
      ++in_count[target];
      EXPECT_FALSE(queries.empty());
      queries.ForEach([&](int q) {
        EXPECT_TRUE(pruned.regions[i].rql.Contains(q));
        EXPECT_TRUE(pruned.regions[target].rql.Contains(q));
        EXPECT_NE(CompareRegions(pruned.regions[i], pruned.regions[target],
                                 workload_.query(q).preference),
                  RegionDomResult::kIncomparable);
      });
    }
  }
  for (int i = 0; i < dg.num_regions(); ++i) {
    EXPECT_EQ(dg.in_degree(i), in_count[i]);
  }
  // Roots are never empty while regions remain.
  EXPECT_FALSE(dg.Roots().empty());
}

TEST_F(RegionBuilderTest, DeactivationPromotesRoots) {
  RegionCollection pruned = *rc_;
  DependencyGraph dg = DependencyGraph::Build(pruned, workload_);
  std::set<int> alive;
  for (int i = 0; i < dg.num_regions(); ++i) {
    if (dg.active(i)) alive.insert(i);
  }
  while (!alive.empty()) {
    const std::vector<int> roots = dg.Roots();
    ASSERT_FALSE(roots.empty());
    const int victim = roots[0];
    std::vector<int> promoted;
    dg.Deactivate(victim, &promoted);
    EXPECT_FALSE(dg.active(victim));
    for (int p : promoted) {
      EXPECT_EQ(dg.in_degree(p), 0);
    }
    alive.erase(victim);
  }
}

// Serial reference for the batched CoarseSkylinePrune: per (query, victim),
// scan candidate dominators in ascending region id and stop at the first
// guaranteed region whose upper corner fully dominates the victim, charging
// one coarse op per scalar test.
CoarsePruneStats ReferenceCoarsePrune(RegionCollection& rc,
                                      const Workload& workload) {
  CoarsePruneStats stats;
  const int n = static_cast<int>(rc.regions.size());
  std::vector<QuerySet> original(n);
  std::vector<QuerySet> before(n);
  for (int i = 0; i < n; ++i) {
    original[i] = rc.regions[i].guaranteed;
    before[i] = rc.regions[i].rql;
  }
  for (int q = 0; q < workload.num_queries(); ++q) {
    const std::vector<int>& dims = workload.query(q).preference;
    for (int j = 0; j < n; ++j) {
      OutputRegion& victim = rc.regions[j];
      if (!victim.rql.Contains(q)) continue;
      for (int i = 0; i < n; ++i) {
        if (i == j || !original[i].Contains(q)) continue;
        ++stats.coarse_ops;
        if (PointFullyDominatesRegion(rc.regions[i].upper.data(), victim,
                                      dims)) {
          victim.rql.Remove(q);
          victim.guaranteed.Remove(q);
          ++stats.pruned_pairs;
          break;
        }
      }
    }
  }
  for (int j = 0; j < n; ++j) {
    if (!before[j].empty() && rc.regions[j].rql.empty()) ++stats.pruned_regions;
  }
  return stats;
}

TEST_F(RegionBuilderTest, BatchedCoarsePruneMatchesSerialReference) {
  RegionCollection batched = *rc_;
  RegionCollection serial = *rc_;
  const CoarsePruneStats batched_stats = CoarseSkylinePrune(batched, workload_);
  const CoarsePruneStats serial_stats =
      ReferenceCoarsePrune(serial, workload_);
  EXPECT_EQ(batched_stats.pruned_pairs, serial_stats.pruned_pairs);
  EXPECT_EQ(batched_stats.pruned_regions, serial_stats.pruned_regions);
  EXPECT_EQ(batched_stats.coarse_ops, serial_stats.coarse_ops);
  ASSERT_EQ(batched.regions.size(), serial.regions.size());
  for (size_t i = 0; i < batched.regions.size(); ++i) {
    EXPECT_EQ(batched.regions[i].rql, serial.regions[i].rql) << i;
    EXPECT_EQ(batched.regions[i].guaranteed, serial.regions[i].guaranteed)
        << i;
  }
}

TEST_F(RegionBuilderTest, IndexedCoarsePruneMatchesSerialReference) {
  RegionCollection indexed = *rc_;
  RegionCollection serial = *rc_;
  CoarsePruneOptions options;
  options.use_index = true;
  CoarseIndexStats index_stats;
  options.index_stats = &index_stats;
  const CoarsePruneStats indexed_stats =
      CoarseSkylinePrune(indexed, workload_, options);
  const CoarsePruneStats serial_stats =
      ReferenceCoarsePrune(serial, workload_);
  // The branch-and-bound traversal must land on the same first dominator
  // the ascending-id scan finds, so every statistic — including the
  // serial-identical coarse_ops charge — matches the reference exactly.
  EXPECT_EQ(indexed_stats.pruned_pairs, serial_stats.pruned_pairs);
  EXPECT_EQ(indexed_stats.pruned_regions, serial_stats.pruned_regions);
  EXPECT_EQ(indexed_stats.coarse_ops, serial_stats.coarse_ops);
  ASSERT_EQ(indexed.regions.size(), serial.regions.size());
  for (size_t i = 0; i < indexed.regions.size(); ++i) {
    EXPECT_EQ(indexed.regions[i].rql, serial.regions[i].rql) << i;
    EXPECT_EQ(indexed.regions[i].guaranteed, serial.regions[i].guaranteed)
        << i;
  }
  // The traversal actually used trees (one per (query, slot) candidate
  // set) rather than silently falling back to the scan.
  EXPECT_GT(index_stats.trees_built, 0);
  EXPECT_GT(index_stats.nodes_visited, 0);
}

TEST_F(RegionBuilderTest, BatchedDependencyGraphMatchesScalarCompareRegions) {
  RegionCollection pruned = *rc_;
  CoarseSkylinePrune(pruned, workload_);
  int64_t batched_ops = 0;
  const DependencyGraph dg =
      DependencyGraph::Build(pruned, workload_, &batched_ops);

  // Serial reference straight from Definition 8: edge i -> j annotated with
  // q iff i fully dominates j, or i partially dominates j while j is
  // incomparable back. Both directions' box tests are charged.
  const int n = static_cast<int>(pruned.regions.size());
  int64_t serial_ops = 0;
  int edges = 0;
  for (int i = 0; i < n; ++i) {
    const OutputRegion& a = pruned.regions[i];
    std::vector<std::pair<int, QuerySet>> expected_out;
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const OutputRegion& b = pruned.regions[j];
      const QuerySet common = a.rql.Intersect(b.rql);
      if (common.empty()) continue;
      QuerySet annotated;
      common.ForEach([&](int q) {
        serial_ops += 2;
        const std::vector<int>& dims = workload_.query(q).preference;
        const RegionDomResult forward = CompareRegions(a, b, dims);
        if (forward == RegionDomResult::kIncomparable) return;
        if (forward == RegionDomResult::kPartiallyDominates &&
            CompareRegions(b, a, dims) != RegionDomResult::kIncomparable) {
          return;
        }
        annotated.Add(q);
      });
      if (!annotated.empty()) expected_out.emplace_back(j, annotated);
    }
    EXPECT_EQ(dg.out_edges(i), expected_out) << "region " << i;
    edges += static_cast<int>(expected_out.size());
  }
  EXPECT_EQ(batched_ops, serial_ops);
  EXPECT_GT(edges, 0);  // The fixture produces a nontrivial graph.
}

TEST(RegionBuilderErrorTest, RejectsInvalidWorkload) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 50, 2, 0.1);
  const PartitionedTable pr = PartitionTable(r, 2).value();
  const PartitionedTable pt = PartitionTable(t, 2).value();
  Workload bad;  // No queries.
  EXPECT_FALSE(BuildRegions(pr, pt, bad).ok());
}

}  // namespace
}  // namespace caqe
