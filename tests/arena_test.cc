// Tests for the epoch arena: alignment, epoch reset and block coalescing,
// steady-state allocation freedom (asserted through the counting alloc
// hook, which this binary links strongly — see tests/CMakeLists.txt), and
// the ArenaVector facade. Under AddressSanitizer the arena additionally
// poisons recycled capacity on Reset(), so a use-after-reset read faults
// instead of returning a previous epoch's bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>

#include "common/alloc_hook.h"
#include "common/arena.h"

namespace caqe {
namespace {

TEST(ArenaTest, AllocatesAlignedDistinctMemory) {
  Arena arena(1 << 12);
  std::set<void*> seen;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(24, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
    EXPECT_TRUE(seen.insert(p).second);
    std::memset(p, 0xAB, 24);  // Must be writable.
  }
  void* wide = arena.Allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(wide) % 64, 0u);
  EXPECT_GE(arena.bytes_used(), 100 * 24 + 64);
}

TEST(ArenaTest, ZeroByteAllocationsAreValid) {
  Arena arena(1 << 8);
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
}

TEST(ArenaTest, ResetStartsANewEpoch) {
  Arena arena(1 << 8);
  EXPECT_EQ(arena.epoch(), 0u);
  arena.Allocate(100);
  EXPECT_GT(arena.bytes_used(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.epoch(), 1u);
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Capacity is retained for reuse.
  EXPECT_GT(arena.bytes_capacity(), 0u);
}

TEST(ArenaTest, OverflowEpochsCoalesceToOneBlock) {
  // Force the first epoch to spill across several blocks, then verify
  // Reset() coalesces to a single block that covers the whole footprint.
  Arena arena(1 << 8);
  constexpr size_t kPerAlloc = 300;
  constexpr int kAllocs = 40;
  for (int i = 0; i < kAllocs; ++i) arena.Allocate(kPerAlloc);
  EXPECT_GT(arena.num_blocks(), 1u);
  const size_t footprint = arena.bytes_used();
  arena.Reset();
  EXPECT_EQ(arena.num_blocks(), 1u);
  EXPECT_GE(arena.bytes_capacity(), footprint);
}

TEST(ArenaTest, SteadyStateEpochsAreHeapAllocationFree) {
  Arena arena(1 << 8);
  const auto run_epoch = [&arena] {
    for (int i = 0; i < 50; ++i) arena.Allocate(200, 16);
  };
  // Warm up: one spilling epoch plus the coalescing reset.
  run_epoch();
  arena.Reset();
  if (!AllocHookActive()) {
    GTEST_SKIP() << "counting alloc hook not linked into this binary";
  }
  const AllocCounts before = ThreadAllocCounts();
  for (int epoch = 0; epoch < 10; ++epoch) {
    run_epoch();
    arena.Reset();
  }
  const AllocCounts after = ThreadAllocCounts();
  EXPECT_EQ(after.allocs - before.allocs, 0u)
      << "steady-state arena epochs must not touch the heap";
}

TEST(ArenaTest, EpochMemoryIsRecycledNotLeaked) {
  // Many epochs of identical usage never grow capacity beyond the first
  // converged block.
  Arena arena(1 << 8);
  for (int i = 0; i < 30; ++i) arena.Allocate(128);
  arena.Reset();
  const size_t converged = arena.bytes_capacity();
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (int i = 0; i < 30; ++i) arena.Allocate(128);
    arena.Reset();
  }
  EXPECT_EQ(arena.bytes_capacity(), converged);
  EXPECT_EQ(arena.num_blocks(), 1u);
}

TEST(ArenaVectorTest, PushGrowsAndPreservesValues) {
  Arena arena;
  ArenaVector<int64_t> v(&arena);
  EXPECT_TRUE(v.empty());
  for (int64_t i = 0; i < 1000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 1000u);
  for (int64_t i = 0; i < 1000; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i * 3);
  // Range iteration covers exactly the elements.
  int64_t count = 0;
  for (int64_t x : v) {
    EXPECT_EQ(x, count * 3);
    ++count;
  }
  EXPECT_EQ(count, 1000);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(ArenaVectorTest, UsableAcrossEpochResets) {
  Arena arena(1 << 8);
  ArenaVector<int> v(&arena);
  for (int epoch = 0; epoch < 5; ++epoch) {
    arena.Reset();
    v.OnEpochReset();
    for (int i = 0; i < 100; ++i) v.push_back(epoch * 1000 + i);
    ASSERT_EQ(v.size(), 100u);
    EXPECT_EQ(v[0], epoch * 1000);
    EXPECT_EQ(v[99], epoch * 1000 + 99);
  }
}

TEST(ArenaVectorTest, EmplaceBuildsAggregates) {
  struct Pair {
    int a;
    double b;
  };
  Arena arena;
  ArenaVector<Pair> v(&arena);
  v.emplace_back(7, 2.5);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].a, 7);
  EXPECT_EQ(v[0].b, 2.5);
}

TEST(AllocHookTest, CountsWhenLinked) {
  if (!AllocHookActive()) {
    GTEST_SKIP() << "counting alloc hook not linked into this binary";
  }
  // Direct operator calls: a plain new-expression/delete pair is legally
  // elidable at -O2, which would make the counters (correctly) stay flat.
  const AllocCounts before = ThreadAllocCounts();
  void* p = ::operator new(64);
  const AllocCounts mid = ThreadAllocCounts();
  EXPECT_GE(mid.allocs - before.allocs, 1u);
  EXPECT_GE(mid.bytes - before.bytes, 64u);
  ::operator delete(p);
  const AllocCounts after = ThreadAllocCounts();
  EXPECT_GE(after.deallocs - mid.deallocs, 1u);
}

}  // namespace
}  // namespace caqe
