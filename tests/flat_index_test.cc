// Differential tests for the flat CSR join index against the legacy
// unordered_map layout, and for the bounded index cache's deterministic
// eviction. The compact layout is a pure layout change: every match
// sequence, probe count, and uncharged-key set must be identical to the
// map-based path at any cache capacity.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "exec/join_kernel.h"
#include "partition/partitioner.h"
#include "query/workload_generator.h"
#include "region/region_builder.h"
#include "test_util.h"

namespace caqe {
namespace {

using ::caqe::testing::MakeTables;

/// The legacy index layout, rebuilt independently of the kernel: key ->
/// matching rows in cell-row order.
std::unordered_map<int32_t, std::vector<int64_t>> ReferenceIndex(
    const Table& t, const std::vector<int64_t>& rows, int key_column) {
  std::unordered_map<int32_t, std::vector<int64_t>> index;
  for (int64_t row : rows) {
    index[t.key(row, key_column)].push_back(row);
  }
  return index;
}

TEST(FlatKeyIndexTest, MatchesMapOnRandomizedWorkloads) {
  for (const uint64_t seed : {3u, 17u, 91u}) {
    for (const int64_t rows : {int64_t{1}, int64_t{37}, int64_t{400}}) {
      auto [r, t] = MakeTables(Distribution::kIndependent, rows, 2, 0.1, seed);
      // A randomized subset in shuffled order — cell row lists are not
      // generally sorted, and the index must preserve their order.
      Rng rng(seed * 7 + 1);
      std::vector<int64_t> subset;
      for (int64_t i = 0; i < t.num_rows(); ++i) {
        if (rng.Bernoulli(0.7)) subset.push_back(i);
      }
      for (size_t i = subset.size(); i > 1; --i) {
        std::swap(subset[i - 1],
                  subset[static_cast<size_t>(
                      rng.UniformInt(0, static_cast<int64_t>(i) - 1))]);
      }

      FlatKeyIndex flat;
      flat.Build(t, subset, /*key_column=*/0);
      const auto reference = ReferenceIndex(t, subset, /*key_column=*/0);

      EXPECT_EQ(flat.num_keys(), static_cast<int64_t>(reference.size()));
      EXPECT_EQ(flat.num_ids(), static_cast<int64_t>(subset.size()));
      // Every reference key's run must reproduce the map's vector exactly,
      // including order (the probe loop iterates runs in sequence).
      for (const auto& [key, ids] : reference) {
        const FlatKeyIndex::Run run = flat.Find(key);
        ASSERT_EQ(run.size, static_cast<int64_t>(ids.size())) << "key " << key;
        for (int64_t i = 0; i < run.size; ++i) {
          EXPECT_EQ(run.data[i], ids[static_cast<size_t>(i)]);
        }
      }
      // Probing absent keys (including ones colliding into occupied slots)
      // returns empty runs.
      for (int32_t key = -5; key < 5; ++key) {
        if (reference.count(key) == 0) {
          EXPECT_TRUE(flat.Find(key).empty());
        }
      }
    }
  }
}

TEST(FlatKeyIndexTest, EmptyAndReleased) {
  FlatKeyIndex index;
  EXPECT_TRUE(index.empty());
  EXPECT_TRUE(index.Find(42).empty());
  auto [r, t] = MakeTables(Distribution::kIndependent, 50, 2, 0.2, 5);
  std::vector<int64_t> all;
  for (int64_t i = 0; i < t.num_rows(); ++i) all.push_back(i);
  index.Build(t, all, 0);
  EXPECT_FALSE(index.empty());
  index.Release();
  EXPECT_TRUE(index.empty());
  EXPECT_TRUE(index.Find(t.key(0, 0)).empty());
}

/// Runs every region's join through `kernel` and returns (matches, stats).
std::pair<std::vector<JoinMatch>, EngineStats> JoinAll(
    CellJoinKernel& kernel, const RegionCollection& rc) {
  std::vector<JoinMatch> all;
  EngineStats stats;
  for (const OutputRegion& region : rc.regions) {
    std::vector<JoinMatch> matches;
    kernel.Join(rc, region, /*slots_mask=*/1, matches, stats);
    all.insert(all.end(), matches.begin(), matches.end());
  }
  return {std::move(all), stats};
}

void ExpectSameMatches(const std::vector<JoinMatch>& a,
                       const std::vector<JoinMatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].row_r, b[i].row_r);
    EXPECT_EQ(a[i].row_t, b[i].row_t);
    EXPECT_EQ(a[i].slot_mask, b[i].slot_mask);
  }
}

TEST(CompactLayoutDifferentialTest, JoinIdenticalToMapLayout) {
  for (const uint64_t seed : {11u, 29u}) {
    auto [r, t] = MakeTables(Distribution::kIndependent, 300, 3, 0.08, seed);
    const Workload workload =
        MakeSubspaceWorkload(3, 0, 2, PriorityPolicy::kUniform).value();
    const PartitionedTable pr = PartitionTable(r, 2).value();
    const PartitionedTable pt = PartitionTable(t, 2).value();
    const RegionCollection rc = BuildRegions(pr, pt, workload).value();

    CellJoinKernel flat_kernel(&pr, &pt);
    flat_kernel.set_compact_layout(true);
    CellJoinKernel map_kernel(&pr, &pt);
    map_kernel.set_compact_layout(false);

    const auto [flat_matches, flat_stats] = JoinAll(flat_kernel, rc);
    const auto [map_matches, map_stats] = JoinAll(map_kernel, rc);
    ExpectSameMatches(flat_matches, map_matches);
    EXPECT_EQ(flat_stats.join_probes, map_stats.join_probes);
    EXPECT_EQ(flat_stats.join_results, map_stats.join_results);
  }
}

TEST(CompactLayoutDifferentialTest, SpeculationIdenticalToMapLayout) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 250, 2, 0.1, 23);
  const Workload workload =
      MakeSubspaceWorkload(2, 0, 1, PriorityPolicy::kUniform).value();
  const PartitionedTable pr = PartitionTable(r, 2).value();
  const PartitionedTable pt = PartitionTable(t, 2).value();
  const RegionCollection rc = BuildRegions(pr, pt, workload).value();

  CellJoinKernel flat_kernel(&pr, &pt);
  flat_kernel.set_compact_layout(true);
  CellJoinKernel map_kernel(&pr, &pt);
  map_kernel.set_compact_layout(false);

  for (const OutputRegion& region : rc.regions) {
    SpeculativeJoin flat_out;
    SpeculativeJoin map_out;
    flat_kernel.JoinForSpeculation(rc, region, /*slots_mask=*/1, flat_out);
    map_kernel.JoinForSpeculation(rc, region, /*slots_mask=*/1, map_out);
    ExpectSameMatches(flat_out.matches, map_out.matches);
    EXPECT_EQ(flat_out.probes, map_out.probes);
    EXPECT_EQ(flat_out.results, map_out.results);
    // The consumed-but-uncharged cache key sets must agree — speculation
    // charging is part of the determinism contract.
    EXPECT_EQ(flat_out.uncharged_keys, map_out.uncharged_keys);
  }
}

TEST(BoundedIndexCacheTest, EvictionIsDeterministicAndChargeSafe) {
  auto [r, t] = MakeTables(Distribution::kIndependent, 300, 3, 0.08, 41);
  const Workload workload =
      MakeSubspaceWorkload(3, 0, 2, PriorityPolicy::kUniform).value();
  const PartitionedTable pr = PartitionTable(r, 3).value();
  const PartitionedTable pt = PartitionTable(t, 3).value();
  const RegionCollection rc = BuildRegions(pr, pt, workload).value();

  // Unbounded reference.
  CellJoinKernel unbounded(&pr, &pt);
  unbounded.set_cache_capacity(0);
  const auto [ref_matches, ref_stats] = JoinAll(unbounded, rc);
  EXPECT_EQ(unbounded.cache_evictions(), 0);

  // A capacity of 1 forces an eviction after (nearly) every join; the
  // `charged` flag survives, so probe accounting must not change even
  // though indexes are rebuilt.
  CellJoinKernel tiny(&pr, &pt);
  tiny.set_cache_capacity(1);
  const auto [tiny_matches, tiny_stats] = JoinAll(tiny, rc);
  ExpectSameMatches(ref_matches, tiny_matches);
  EXPECT_EQ(ref_stats.join_probes, tiny_stats.join_probes);
  EXPECT_EQ(ref_stats.join_results, tiny_stats.join_results);
  EXPECT_GT(tiny.cache_evictions(), 0);
  // Rebuilds happened (more builds than the unbounded run's distinct
  // indexes), yet nothing was re-charged.
  EXPECT_GT(tiny.index_builds(), unbounded.index_builds());

  // Eviction order is a pure function of the join sequence: a second
  // identical run evicts exactly as often.
  CellJoinKernel tiny2(&pr, &pt);
  tiny2.set_cache_capacity(1);
  const auto [m2, s2] = JoinAll(tiny2, rc);
  EXPECT_EQ(tiny2.cache_evictions(), tiny.cache_evictions());
  EXPECT_EQ(tiny2.index_builds(), tiny.index_builds());
  EXPECT_EQ(s2.join_probes, tiny_stats.join_probes);
}

}  // namespace
}  // namespace caqe
