// Self-tuning admission calibration tests (src/serve/calibration.*):
// integer-EWMA determinism, saturation clamps, hysteresis gating, and the
// randomized property that a *calibrated* serving run stays byte-identical
// across thread counts, pipelining, and live-record->replay — calibration
// is a data-shape parameter, never a source of nondeterminism.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "contracts/utility.h"
#include "data/generator.h"
#include "serve/calibration.h"
#include "serve/server.h"
#include "serve/serving.h"
#include "serve/trace.h"
#include "test_util.h"

namespace caqe {
namespace {

Calibrator::CompletionSample MakeSample(double raw_seconds,
                                        double observed_seconds) {
  Calibrator::CompletionSample sample;
  sample.raw_est_seconds = raw_seconds;
  sample.observed_seconds = observed_seconds;
  sample.raw_est_results = 10.0;
  sample.observed_results = 10;
  return sample;
}

TEST(CalibratorTest, UntouchedBucketIsIdentity) {
  Calibrator calibrator;
  Calibrator::BucketKey key = Calibrator::KeyFor(3, 64, 4, 1, false);
  ASSERT_GE(key.index, 0);
  EXPECT_DOUBLE_EQ(calibrator.CorrectSeconds(key, 2.5), 2.5);
  EXPECT_DOUBLE_EQ(calibrator.CorrectCardinality(key, 42.0), 42.0);
  EXPECT_EQ(calibrator.time_factor(key), Calibrator::kOne);

  Calibrator::BucketKey invalid;  // index -1
  EXPECT_DOUBLE_EQ(calibrator.CorrectSeconds(invalid, 2.5), 2.5);
  EXPECT_EQ(calibrator.time_factor(invalid), Calibrator::kOne);
  // Observations against an invalid key are dropped, not misfiled.
  calibrator.ObserveCompletion(invalid, MakeSample(1.0, 2.0));
  EXPECT_EQ(calibrator.completions(), 0);
}

// The EWMA is exact integer arithmetic: the factor sequence for a fixed
// sample stream is a hard constant, not an approximation.
TEST(CalibratorTest, IntegerEwmaIsExact) {
  Calibrator calibrator;  // alpha = 1/4
  const Calibrator::BucketKey key = Calibrator::KeyFor(2, 16, 2, 0, true);
  ASSERT_GE(key.index, 0);

  // observed/raw = 0.5 -> ratio 32768. factor: 65536 -> 57344 -> 51200.
  calibrator.ObserveCompletion(key, MakeSample(2.0, 1.0));
  EXPECT_EQ(calibrator.time_factor(key), 57344);
  calibrator.ObserveCompletion(key, MakeSample(2.0, 1.0));
  EXPECT_EQ(calibrator.time_factor(key), 51200);
  EXPECT_EQ(calibrator.completions(), 2);

  // A replayed stream reproduces the identical factor.
  Calibrator replay;
  replay.ObserveCompletion(key, MakeSample(2.0, 1.0));
  replay.ObserveCompletion(key, MakeSample(2.0, 1.0));
  EXPECT_EQ(replay.time_factor(key), calibrator.time_factor(key));
  EXPECT_EQ(replay.card_factor(key), calibrator.card_factor(key));
}

TEST(CalibratorTest, SaturationClampsBoundTheFactors) {
  CalibrationOptions options;
  Calibrator calibrator(options);
  const Calibrator::BucketKey key = Calibrator::KeyFor(1, 4, 1, 0, false);
  ASSERT_GE(key.index, 0);

  // Adversarially huge ratios: the factor may approach but never exceed
  // max_factor, no matter how many samples arrive.
  for (int i = 0; i < 200; ++i) {
    calibrator.ObserveCompletion(key, MakeSample(0.001, 1e9));
  }
  EXPECT_LE(calibrator.time_factor(key), options.max_factor);
  EXPECT_GT(calibrator.time_factor(key), options.max_factor / 2);

  // And the symmetric floor for near-zero ratios.
  Calibrator floor_cal(options);
  for (int i = 0; i < 200; ++i) {
    floor_cal.ObserveCompletion(key, MakeSample(1e9, 0.001));
  }
  EXPECT_GE(floor_cal.time_factor(key), options.min_factor);
  EXPECT_LT(floor_cal.time_factor(key), options.min_factor * 2);
}

TEST(CalibratorTest, HysteresisGatesTheShiftFlag) {
  Calibrator calibrator;
  const Calibrator::BucketKey key = Calibrator::KeyFor(3, 256, 8, 1, false);
  ASSERT_GE(key.index, 0);

  // One mild sample: |drift| = kOne/8 exactly, which does NOT exceed the
  // strict hysteresis threshold.
  calibrator.ObserveCompletion(key, MakeSample(1.0, 0.5));
  EXPECT_EQ(calibrator.time_factor(key), 57344);  // drift 8192 == kOne/8
  EXPECT_FALSE(calibrator.TakeShift());

  // The next sample pushes past the threshold; the flag raises once and
  // reading clears it.
  calibrator.ObserveCompletion(key, MakeSample(1.0, 0.5));
  EXPECT_TRUE(calibrator.TakeShift());
  EXPECT_FALSE(calibrator.TakeShift());
  EXPECT_EQ(calibrator.shifts(), 1);

  // The applied factor resynced at the shift: identical further samples
  // drift too little to re-arm.
  calibrator.ObserveCompletion(key, MakeSample(1.0, 0.7));
  EXPECT_FALSE(calibrator.TakeShift());
}

TEST(CalibratorTest, TrustRequiresEnoughSamples) {
  CalibrationOptions options;
  Calibrator calibrator(options);
  const Calibrator::BucketKey key = Calibrator::KeyFor(2, 64, 4, 0, false);
  ASSERT_GE(key.index, 0);
  for (int i = 0; i < options.trust_samples; ++i) {
    EXPECT_FALSE(calibrator.Trusted(key));
    calibrator.ObserveCompletion(key, MakeSample(1.0, 0.9));
  }
  EXPECT_TRUE(calibrator.Trusted(key));
  Calibrator::BucketKey invalid;
  EXPECT_FALSE(calibrator.Trusted(invalid));
}

// The error series records estimation quality *before* each sample moves
// the factors: the very first sample's corrected error equals its raw
// error (identity factor), and later corrected errors reflect the learned
// factor, not hindsight.
TEST(CalibratorTest, ErrorSeriesIsPreUpdate) {
  Calibrator calibrator;
  const Calibrator::BucketKey key = Calibrator::KeyFor(2, 64, 4, 0, false);
  calibrator.ObserveCompletion(key, MakeSample(2.0, 1.0));
  ASSERT_EQ(calibrator.error_series().size(), 1u);
  EXPECT_DOUBLE_EQ(calibrator.error_series()[0].raw_abs_rel_error, 0.5);
  EXPECT_DOUBLE_EQ(calibrator.error_series()[0].corrected_abs_rel_error, 0.5);

  // Second identical completion: corrected uses factor 57344/65536 = 0.875,
  // so corrected_est = 1.75 and |1.0 - 1.75| / 1.75 = 0.428571...
  calibrator.ObserveCompletion(key, MakeSample(2.0, 1.0));
  ASSERT_EQ(calibrator.error_series().size(), 2u);
  EXPECT_DOUBLE_EQ(calibrator.error_series()[1].raw_abs_rel_error, 0.5);
  EXPECT_NEAR(calibrator.error_series()[1].corrected_abs_rel_error, 0.75 / 1.75,
              1e-12);
}

TEST(CalibratorTest, BucketKeyIsStable) {
  const Calibrator::BucketKey a = Calibrator::KeyFor(3, 1000, 10, 2, true);
  const Calibrator::BucketKey b = Calibrator::KeyFor(3, 1000, 10, 2, true);
  EXPECT_EQ(a.index, b.index);
  EXPECT_GE(a.index, 0);
  EXPECT_LT(a.index, Calibrator::kNumBuckets);
  // Distinct signatures land in distinct buckets.
  EXPECT_NE(a.index, Calibrator::KeyFor(4, 1000, 10, 2, true).index);
  EXPECT_NE(a.index, Calibrator::KeyFor(3, 1000, 10, 2, false).index);
  // Degenerate inputs are "no bucket", not UB.
  EXPECT_EQ(Calibrator::KeyFor(0, 1000, 10, 2, true).index, -1);
  EXPECT_EQ(Calibrator::KeyFor(3, 1000, 0, 2, true).index, -1);
  EXPECT_EQ(Calibrator::KeyFor(3, 1000, 10, -1, true).index, -1);
  EXPECT_EQ(Calibrator::BucketLabel(Calibrator::BucketKey{}), "invalid");
}

// ---- Randomized property: calibrated serving is deterministic ----

uint64_t XorShift(uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

std::pair<Table, Table> PropertyTables(uint64_t seed) {
  GeneratorConfig cfg;
  cfg.num_rows = 220;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.05, 0.05};
  cfg.seed = seed;
  Table r = GenerateTable("R", cfg).value();
  cfg.seed = seed + 1;
  Table t = GenerateTable("T", cfg).value();
  return {std::move(r), std::move(t)};
}

std::vector<MappingFunction> ThreeDims() {
  return {MappingFunction{0, 0}, MappingFunction{1, 1}, MappingFunction{2, 2}};
}

// Byte-identical calibrated reports across threads {1,8} x pipeline {off,on}
// on randomized traces: the calibrator's updates all happen on the serial
// driver step, so no execution axis may leak into admission decisions.
TEST(CalibrationPropertyTest, ReportIsByteIdenticalAcrossEngines) {
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  for (int round = 0; round < 3; ++round) {
    TraceConfig config;
    config.num_requests = 10 + static_cast<int>(XorShift(rng) % 8);
    config.arrival_rate = 20.0 + static_cast<double>(XorShift(rng) % 40);
    config.seed = XorShift(rng);
    config.reference_seconds = 0.05;
    config.deadline_fraction = 0.3;
    config.cancel_fraction = 0.1;
    const uint64_t table_seed = XorShift(rng) | 1;

    const auto run = [&](int threads, bool pipeline) {
      auto [r, t] = PropertyTables(table_seed);
      ServeOptions options;
      options.target_regions = 64;
      options.num_threads = threads;
      options.pipeline_regions = pipeline;
      options.calibrate = true;
      auto server = CaqeServer::Create(std::move(r), std::move(t),
                                       ThreeDims(), {0, 1}, options)
                        .value();
      const std::vector<TraceRequest> trace =
          MakeSyntheticTrace(config, {0, 1}, 3);
      SubmitTrace(*server, trace);
      const ServingReport report = server->Run().value();
      EXPECT_GE(report.admitted, 1);
      // The loop actually closed: completions were observed.
      EXPECT_NE(server->calibrator(), nullptr);
      if (report.completed > 0) {
        EXPECT_GT(server->calibrator()->completions(), 0);
      }
      return ServingReportText(report) + server->CalibrationStatusText();
    };

    const std::string baseline = run(1, false);
    EXPECT_EQ(baseline, run(8, false)) << "round " << round;
    EXPECT_EQ(baseline, run(8, true)) << "round " << round;
    EXPECT_EQ(baseline, run(1, false)) << "round " << round;
  }
}

// Live-record -> replay identity under calibration: a live session driven
// step-by-step with randomized arrival interleaving, recorded as (query,
// contract, quantized vtime, deadline), must replay through Submit()+Run()
// to the byte-identical report — including every calibration factor.
TEST(CalibrationPropertyTest, LiveSessionReplaysByteIdentically) {
  uint64_t rng = 0xdeadbeefcafef00dull;
  for (int round = 0; round < 2; ++round) {
    TraceConfig config;
    config.num_requests = 8 + static_cast<int>(XorShift(rng) % 6);
    config.arrival_rate = 25.0;
    config.seed = XorShift(rng);
    config.reference_seconds = 0.05;
    config.deadline_fraction = 0.3;
    config.cancel_fraction = 0.0;
    const uint64_t table_seed = XorShift(rng) | 1;
    const std::vector<TraceRequest> trace =
        MakeSyntheticTrace(config, {0, 1}, 3);

    ServeOptions options;
    options.target_regions = 64;
    options.calibrate = true;

    // Live leg: ingest arrivals at quantized virtual times with a random
    // number of engine steps between them (the wall-clock front-end's
    // schedule is arbitrary; determinism must not depend on it).
    struct Recorded {
      SjQuery query;
      Contract contract;
      double vtime = 0.0;
      double deadline = 0.0;
    };
    std::vector<Recorded> recorded;
    std::string live_text;
    {
      auto [r, t] = PropertyTables(table_seed);
      auto server = CaqeServer::Create(std::move(r), std::move(t),
                                       ThreeDims(), {0, 1}, options)
                        .value();
      ASSERT_TRUE(server->BeginLive().ok());
      ArrivalQuantizer quantizer;
      for (const TraceRequest& request : trace) {
        const int steps = static_cast<int>(XorShift(rng) % 5);
        for (int i = 0; i < steps; ++i) server->StepLive();
        const int64_t index = quantizer.Next(server->VirtualNow());
        const double vtime = quantizer.TimeOf(index);
        ASSERT_TRUE(server
                        ->SubmitLive(request.query, request.contract, vtime,
                                     request.deadline_seconds)
                        .ok());
        recorded.push_back(Recorded{request.query, request.contract, vtime,
                                    request.deadline_seconds});
      }
      const ServingReport live_report = server->FinishLive().value();
      live_text = ServingReportText(live_report) +
                  server->CalibrationStatusText();
    }

    // Replay leg: the recorded session through the batch path.
    {
      auto [r, t] = PropertyTables(table_seed);
      auto server = CaqeServer::Create(std::move(r), std::move(t),
                                       ThreeDims(), {0, 1}, options)
                        .value();
      for (const Recorded& rec : recorded) {
        server->Submit(rec.query, rec.contract, rec.vtime, rec.deadline);
      }
      const ServingReport replay_report = server->Run().value();
      const std::string replay_text = ServingReportText(replay_report) +
                                      server->CalibrationStatusText();
      EXPECT_EQ(live_text, replay_text) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace caqe
