// Unit tests for tables and the Börzsönyi-style dataset generators.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "data/generator.h"
#include "data/table.h"

namespace caqe {
namespace {

double PearsonCorrelation(const Table& t, int a, int b) {
  const int64_t n = t.num_rows();
  double sa = 0.0;
  double sb = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    sa += t.attr(i, a);
    sb += t.attr(i, b);
  }
  const double ma = sa / n;
  const double mb = sb / n;
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double da = t.attr(i, a) - ma;
    const double db = t.attr(i, b) - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  return cov / std::sqrt(va * vb);
}

TEST(TableTest, AppendAndAccess) {
  Table t("T", 2, 1);
  t.AppendRow({1.5, 2.5}, {7});
  t.AppendRow({3.0, 4.0}, {9});
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_DOUBLE_EQ(t.attr(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(t.attr(1, 1), 4.0);
  EXPECT_EQ(t.key(0, 0), 7);
  EXPECT_EQ(t.key(1, 0), 9);
  EXPECT_EQ(t.name(), "T");
}

TEST(GeneratorTest, RejectsBadConfigs) {
  GeneratorConfig cfg;
  cfg.num_rows = 0;
  EXPECT_FALSE(GenerateTable("X", cfg).ok());
  cfg.num_rows = 10;
  cfg.num_attrs = 0;
  EXPECT_FALSE(GenerateTable("X", cfg).ok());
  cfg.num_attrs = 2;
  cfg.attr_min = 5.0;
  cfg.attr_max = 5.0;
  EXPECT_FALSE(GenerateTable("X", cfg).ok());
  cfg.attr_max = 10.0;
  cfg.join_selectivities = {0.0};
  EXPECT_FALSE(GenerateTable("X", cfg).ok());
  cfg.join_selectivities = {1.5};
  EXPECT_FALSE(GenerateTable("X", cfg).ok());
  cfg.join_selectivities = {0.1};
  EXPECT_TRUE(GenerateTable("X", cfg).ok());
}

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorConfig cfg;
  cfg.num_rows = 100;
  cfg.num_attrs = 3;
  cfg.join_selectivities = {0.1};
  cfg.seed = 99;
  const Table a = GenerateTable("A", cfg).value();
  const Table b = GenerateTable("B", cfg).value();
  for (int64_t i = 0; i < a.num_rows(); ++i) {
    for (int k = 0; k < 3; ++k) {
      EXPECT_DOUBLE_EQ(a.attr(i, k), b.attr(i, k));
    }
    EXPECT_EQ(a.key(i, 0), b.key(i, 0));
  }
}

class DistributionTest : public ::testing::TestWithParam<Distribution> {};

TEST_P(DistributionTest, RespectsSizeAndRange) {
  GeneratorConfig cfg;
  cfg.num_rows = 2000;
  cfg.num_attrs = 4;
  cfg.attr_min = 1.0;
  cfg.attr_max = 100.0;
  cfg.distribution = GetParam();
  const Table t = GenerateTable("T", cfg).value();
  EXPECT_EQ(t.num_rows(), 2000);
  EXPECT_EQ(t.num_attrs(), 4);
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    for (int k = 0; k < 4; ++k) {
      EXPECT_GE(t.attr(i, k), 1.0);
      EXPECT_LE(t.attr(i, k), 100.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionTest,
    ::testing::Values(Distribution::kIndependent, Distribution::kCorrelated,
                      Distribution::kAntiCorrelated),
    [](const ::testing::TestParamInfo<Distribution>& info) {
      return DistributionName(info.param);
    });

TEST(GeneratorTest, CorrelationSigns) {
  GeneratorConfig cfg;
  cfg.num_rows = 5000;
  cfg.num_attrs = 2;
  cfg.seed = 17;

  cfg.distribution = Distribution::kIndependent;
  const Table ind = GenerateTable("I", cfg).value();
  EXPECT_LT(std::abs(PearsonCorrelation(ind, 0, 1)), 0.1);

  cfg.distribution = Distribution::kCorrelated;
  const Table cor = GenerateTable("C", cfg).value();
  EXPECT_GT(PearsonCorrelation(cor, 0, 1), 0.8);

  cfg.distribution = Distribution::kAntiCorrelated;
  const Table anti = GenerateTable("A", cfg).value();
  EXPECT_LT(PearsonCorrelation(anti, 0, 1), -0.5);
}

TEST(GeneratorTest, JoinSelectivityApproximatelyMet) {
  // For two tables with uniform keys over domain size K = 1/sigma, the
  // expected match probability of a random pair is sigma.
  for (double sigma : {0.1, 0.01}) {
    GeneratorConfig cfg;
    cfg.num_rows = 3000;
    cfg.num_attrs = 2;
    cfg.join_selectivities = {sigma};
    cfg.seed = 23;
    const Table r = GenerateTable("R", cfg).value();
    cfg.seed = 24;
    const Table t = GenerateTable("T", cfg).value();

    // Count matches via key histograms.
    std::vector<int64_t> hist_r(static_cast<int64_t>(1.0 / sigma) + 1, 0);
    std::vector<int64_t> hist_t(hist_r.size(), 0);
    for (int64_t i = 0; i < r.num_rows(); ++i) ++hist_r[r.key(i, 0)];
    for (int64_t i = 0; i < t.num_rows(); ++i) ++hist_t[t.key(i, 0)];
    double matches = 0;
    for (size_t k = 0; k < hist_r.size(); ++k) {
      matches += static_cast<double>(hist_r[k]) * hist_t[k];
    }
    const double observed =
        matches / (static_cast<double>(r.num_rows()) * t.num_rows());
    EXPECT_NEAR(observed, sigma, sigma * 0.15);
  }
}

TEST(GeneratorTest, DistributionNamesAreStable) {
  EXPECT_STREQ(DistributionName(Distribution::kIndependent), "independent");
  EXPECT_STREQ(DistributionName(Distribution::kCorrelated), "correlated");
  EXPECT_STREQ(DistributionName(Distribution::kAntiCorrelated),
               "anticorrelated");
}

TEST(GeneratorTest, CorrelatedSkylinesAreTiny) {
  // Sanity check on the distribution construction: correlated data has far
  // smaller skylines than anti-correlated data of the same size.
  GeneratorConfig cfg;
  cfg.num_rows = 1000;
  cfg.num_attrs = 3;
  cfg.seed = 31;
  auto count_skyline = [&](Distribution d) {
    cfg.distribution = d;
    const Table t = GenerateTable("T", cfg).value();
    int64_t count = 0;
    for (int64_t i = 0; i < t.num_rows(); ++i) {
      bool dominated = false;
      for (int64_t j = 0; j < t.num_rows() && !dominated; ++j) {
        if (i == j) continue;
        bool all_le = true;
        bool one_lt = false;
        for (int k = 0; k < 3; ++k) {
          if (t.attr(j, k) > t.attr(i, k)) all_le = false;
          if (t.attr(j, k) < t.attr(i, k)) one_lt = true;
        }
        dominated = all_le && one_lt;
      }
      if (!dominated) ++count;
    }
    return count;
  };
  const int64_t corr = count_skyline(Distribution::kCorrelated);
  const int64_t anti = count_skyline(Distribution::kAntiCorrelated);
  EXPECT_LT(corr * 5, anti);
}

TEST(GeneratorTest, JoinKeyCorrelationClustersKeys) {
  GeneratorConfig cfg;
  cfg.num_rows = 4000;
  cfg.num_attrs = 2;
  cfg.join_selectivities = {0.01};  // 100 keys.
  cfg.join_key_correlation = 1.0;
  cfg.seed = 77;
  const Table t = GenerateTable("T", cfg).value();
  // With full correlation the key is a deterministic function of the first
  // attribute's position: rows in the lower attribute half use only the
  // lower half of the key domain.
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    const double frac = (t.attr(i, 0) - 1.0) / 99.0;
    const int32_t key = t.key(i, 0);
    EXPECT_NEAR(key, frac * 100, 1.5) << "row " << i;
  }
  // Invalid correlation rejected.
  cfg.join_key_correlation = 1.5;
  EXPECT_FALSE(GenerateTable("T", cfg).ok());
}

TEST(GeneratorTest, ZeroCorrelationKeysIndependentOfAttrs) {
  GeneratorConfig cfg;
  cfg.num_rows = 4000;
  cfg.num_attrs = 2;
  cfg.join_selectivities = {0.1};
  cfg.join_key_correlation = 0.0;
  cfg.seed = 78;
  const Table t = GenerateTable("T", cfg).value();
  // Mean attribute value should not differ much between key buckets.
  std::vector<double> sums(10, 0.0);
  std::vector<int64_t> counts(10, 0);
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    sums[t.key(i, 0)] += t.attr(i, 0);
    ++counts[t.key(i, 0)];
  }
  for (int k = 0; k < 10; ++k) {
    ASSERT_GT(counts[k], 0);
    EXPECT_NEAR(sums[k] / counts[k], 50.5, 8.0);
  }
}

}  // namespace
}  // namespace caqe
