// Deterministic mutation fuzzer for the wire protocol (src/net/protocol.*).
//
// A tiny xorshift64-driven harness — not libFuzzer, so it runs as a plain
// ctest entry in every build — mutates a seed corpus of canonical
// SUBMIT/CONTRACT/control lines and hammers ParseCommand and LineBuffer
// with the results. The contract under test is the protocol's hardening
// promise (protocol.h): hostile bytes must produce a stable kebab-case
// error code — never a crash, an abort, an unbounded buffer, or a
// nondeterministic verdict. Sanitizer builds (scripts/run_tsan.sh, the
// ASan cells) upgrade "no crash" to "no UB".
//
// Three properties per mutated input:
//   1. ParseCommand returns; on error the message starts with one of the
//      documented stable codes.
//   2. Accepted SUBMITs round-trip: FormatSubmitCommand(parse(x))
//      re-parses to the identical command (canonical-form contract).
//   3. The whole run is a pure function of the fuzz seed: two passes over
//      the same stream produce byte-identical outcome digests (the
//      determinism half of the hardening promise).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace caqe {
namespace net {
namespace {

constexpr const char* kStableCodes[] = {
    "bad-command",     "bad-field",     "missing-field", "duplicate-field",
    "bad-byte",        "line-too-long", "bad-contract",
};

bool StartsWithStableCode(const std::string& message) {
  for (const char* code : kStableCodes) {
    if (message.rfind(code, 0) == 0) return true;
  }
  return false;
}

uint64_t XorShift(uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

/// Canonical, well-formed lines the mutator starts from: every verb, every
/// Table 2 contract class, selections, deadlines, ids.
std::vector<std::string> SeedCorpus() {
  return {
      "SUBMIT name=q0 key=0 pref=0,1 priority=0.5 CONTRACT step:1.5",
      "SUBMIT id=3 name=a.b:c-d_e key=1 pref=2 deadline=0.25 "
      "sel=r:0:0.1:0.9 sel=t:2:-1:1 CONTRACT hybrid:0.5,0.1,0.2",
      "SUBMIT name=w key=2 pref=0,1,2 CONTRACT log:0.05",
      "SUBMIT name=h key=0 pref=1 CONTRACT hyper:0.5,0.1",
      "SUBMIT name=c key=0 pref=0 CONTRACT card:0.9,1",
      "SUBMIT name=r key=1 pref=0,2 CONTRACT rate:16,0.5",
      "STATUS",
      "CANCEL 7",
      "TRACE q0",
      "DRAIN",
      "STOP",
  };
}

/// One mutation round: flip/insert/delete/truncate/splice/duplicate.
std::string Mutate(std::string line, uint64_t& rng,
                   const std::vector<std::string>& corpus) {
  switch (XorShift(rng) % 7) {
    case 0: {  // flip one byte to an arbitrary value (NUL and >127 too)
      if (line.empty()) return line;
      line[XorShift(rng) % line.size()] =
          static_cast<char>(XorShift(rng) % 256);
      return line;
    }
    case 1: {  // insert an arbitrary byte
      const size_t at = line.empty() ? 0 : XorShift(rng) % (line.size() + 1);
      line.insert(line.begin() + static_cast<ptrdiff_t>(at),
                  static_cast<char>(XorShift(rng) % 256));
      return line;
    }
    case 2: {  // delete a span
      if (line.empty()) return line;
      const size_t at = XorShift(rng) % line.size();
      const size_t n = 1 + XorShift(rng) % 8;
      return line.erase(at, n);
    }
    case 3:  // truncate
      return line.substr(0, line.empty() ? 0 : XorShift(rng) % line.size());
    case 4: {  // splice the tail of another corpus line on
      const std::string& other = corpus[XorShift(rng) % corpus.size()];
      const size_t cut = other.empty() ? 0 : XorShift(rng) % other.size();
      return line + other.substr(cut);
    }
    case 5: {  // duplicate one whitespace-delimited token (field dup probe)
      const size_t space = line.find(' ', XorShift(rng) % (line.size() + 1));
      if (space == std::string::npos) return line + " " + line;
      const size_t end = line.find(' ', space + 1);
      const std::string token = line.substr(
          space, end == std::string::npos ? std::string::npos : end - space);
      return line + token;
    }
    default: {  // blow past the line cap occasionally
      if (XorShift(rng) % 8 == 0) {
        return line + std::string(70000, 'x');
      }
      return line + std::string(1 + XorShift(rng) % 32,
                                static_cast<char>('a' + XorShift(rng) % 26));
    }
  }
}

/// FNV-1a over one iteration's observable outcome.
void DigestOutcome(uint64_t& digest, const std::string& outcome) {
  for (const char c : outcome) {
    digest ^= static_cast<unsigned char>(c);
    digest *= 1099511628211ull;
  }
}

/// Runs the full fuzz stream once; returns the outcome digest. Asserts the
/// stable-code and round-trip properties along the way.
uint64_t FuzzParseCommandOnce(uint64_t seed, int iterations) {
  const std::vector<std::string> corpus = SeedCorpus();
  const ProtocolLimits limits;
  uint64_t rng = seed;
  uint64_t digest = 14695981039346656037ull;
  for (int i = 0; i < iterations; ++i) {
    std::string line = corpus[XorShift(rng) % corpus.size()];
    const int rounds = 1 + static_cast<int>(XorShift(rng) % 4);
    for (int m = 0; m < rounds; ++m) line = Mutate(line, rng, corpus);

    const Result<Command> result = ParseCommand(line, limits);
    if (!result.ok()) {
      EXPECT_TRUE(StartsWithStableCode(result.status().message()))
          << "unstable error code for input: " << line << " -> "
          << result.status().message();
      DigestOutcome(digest, "E:" + result.status().message());
      continue;
    }
    DigestOutcome(digest, "K:" + std::to_string(static_cast<int>(
                              result->kind)));
    if (result->kind != CommandKind::kSubmit) continue;

    // Canonical-form round trip: format(parse(x)) re-parses identically.
    const SubmitCommand& submit = result->submit;
    const std::string canonical =
        FormatSubmitCommand(submit.query, submit.contract_canonical,
                            submit.deadline_seconds, submit.trace_id);
    const Result<Command> reparsed = ParseCommand(canonical, limits);
    EXPECT_TRUE(reparsed.ok())
        << "canonical form rejected: " << canonical << " -> "
        << reparsed.status().message() << " (from fuzz input: " << line
        << ")";
    if (!reparsed.ok()) continue;
    const SubmitCommand& again = reparsed->submit;
    EXPECT_EQ(again.query.name, submit.query.name);
    EXPECT_EQ(again.query.join_key, submit.query.join_key);
    EXPECT_EQ(again.query.preference, submit.query.preference);
    EXPECT_EQ(again.query.priority, submit.query.priority);
    EXPECT_EQ(again.query.selections.size(), submit.query.selections.size());
    EXPECT_EQ(again.deadline_seconds, submit.deadline_seconds);
    EXPECT_EQ(again.trace_id, submit.trace_id);
    EXPECT_EQ(again.contract_canonical, submit.contract_canonical);
    DigestOutcome(digest, canonical);
  }
  return digest;
}

TEST(NetFuzzTest, ParseCommandSurvivesMutatedCorpus) {
  FuzzParseCommandOnce(0x243f6a8885a308d3ull, 20000);
}

// Same seed, same stream, same verdicts: parsing is a pure function of the
// bytes, with no hidden state between calls.
TEST(NetFuzzTest, FuzzStreamIsDeterministic) {
  const uint64_t a = FuzzParseCommandOnce(0x13198a2e03707344ull, 5000);
  const uint64_t b = FuzzParseCommandOnce(0x13198a2e03707344ull, 5000);
  EXPECT_EQ(a, b);
}

// LineBuffer under adversarial chunking: random split points (mid-token,
// mid-CRLF), interleaved oversized lines, garbage bytes. The buffer must
// never grow past cap + one chunk, must report each oversized line's
// overflow exactly once, and must pop the identical line sequence when the
// same bytes arrive under a different chunking.
TEST(NetFuzzTest, LineBufferSurvivesAdversarialChunking) {
  uint64_t rng = 0xa4093822299f31d0ull;
  const std::vector<std::string> corpus = SeedCorpus();

  // Build one hostile byte stream: mutated lines with mixed terminators
  // and a few cap-busting monsters.
  std::string stream;
  int oversized = 0;
  const size_t cap = 4096;
  for (int i = 0; i < 200; ++i) {
    std::string line = corpus[XorShift(rng) % corpus.size()];
    line = Mutate(line, rng, corpus);
    // Mutations may have introduced terminators mid-line; keep the ground
    // truth well-defined by stripping them.
    std::string clean;
    for (const char c : line) {
      if (c != '\n' && c != '\r') clean.push_back(c);
    }
    if (XorShift(rng) % 16 == 0) {
      clean.append(std::string(cap + 1 + XorShift(rng) % 512, 'z'));
    }
    if (clean.size() > cap) ++oversized;
    stream += clean;
    stream += (XorShift(rng) % 2 == 0) ? "\r\n" : "\n";
  }

  const auto drain = [&](LineBuffer& buffer, std::vector<std::string>& lines,
                         int& overflows) {
    std::string out;
    for (;;) {
      const LineBuffer::Pop pop = buffer.Next(out);
      if (pop == LineBuffer::Pop::kNeedMore) break;
      if (pop == LineBuffer::Pop::kOverflow) {
        ++overflows;
        continue;
      }
      lines.push_back(out);
    }
  };

  const auto run_chunked = [&](uint64_t chunk_seed) {
    LineBuffer buffer(cap);
    std::vector<std::string> lines;
    int overflows = 0;
    uint64_t chunk_rng = chunk_seed;
    size_t at = 0;
    while (at < stream.size()) {
      const size_t n =
          std::min(stream.size() - at, 1 + XorShift(chunk_rng) % 97);
      buffer.Append(stream.data() + at, n);
      at += n;
      EXPECT_LE(buffer.buffered(), cap + 97);
      drain(buffer, lines, overflows);
    }
    EXPECT_EQ(overflows, oversized);
    return lines;
  };

  const std::vector<std::string> one_byte_chunks = run_chunked(1);
  const std::vector<std::string> big_chunks = run_chunked(99991);
  EXPECT_EQ(one_byte_chunks, big_chunks);
  EXPECT_FALSE(one_byte_chunks.empty());
}

}  // namespace
}  // namespace net
}  // namespace caqe
